#pragma once

// The real-network execution backend: a fourth sim::Simulator that binds
// the synthesized state machines to actual UDP sockets on loopback. Each
// process owns one bound socket; sampling probes, pushes, and tokens are
// real datagrams (net/packet.hpp); protocol periods are driven off
// wall-clock timers (options.period_ms per protocol period, with the
// same per-process drift model as the event backend); and loss, RTT,
// reordering, and duplication are *measured* properties of the kernel's
// network stack instead of synthetic draws -- an unanswered probe is
// declared lost after options.probe_timeout periods, exactly the timeout
// surrogate a deployed gossip node would use.
//
// Simulation time is still counted in fractional protocol periods (the
// Simulator contract), paced against the wall clock: one period of sim
// time elapses per period_ms of real time. The fault surface -- massive
// failures, targeted crashes, background crash-recovery, churn playback
// -- maps onto socket lifecycle: a crash closes the socket mid-flight
// (peers see timeouts, not errors), a churn departure gossips a Leave
// first, and every revival rebinds the port and runs a Join/JoinAck
// handshake before the node's period timer starts again.
//
// All N nodes live in one OS process (loopback deployment); group state
// is shared, so directory token routing and population metrics read the
// same oracle the event backend uses. The per-message behavior mirrors
// sim/event_sim.cpp action for action, so the loopback equivalence suite
// can pin net steady states against sync/event/mean-field.

#include <netinet/in.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/state_machine.hpp"
#include "net/packet.hpp"
#include "net/socket.hpp"
#include "sim/event_queue.hpp"
#include "sim/group.hpp"
#include "sim/metrics.hpp"
#include "sim/runtime.hpp"
#include "sim/simulator.hpp"

namespace deproto::net {

struct NetSimOptions {
  /// Wall-clock milliseconds per protocol period. The protocols tolerate
  /// any value (periods are just gossip rounds); short periods make
  /// loopback tests fast, long ones make RTTs negligible by comparison.
  double period_ms = 20.0;
  /// Probe loss surrogate: a probe unanswered for this many periods
  /// resolves as lost (the nullopt the machines already understand).
  double probe_timeout = 0.5;
  /// Emulated send-side drop probability, so synthetic loss experiments
  /// (runtime.message_loss) compose with measured loopback behavior.
  double message_loss = 0.0;
  /// Per-process period = period_ms * Uniform(1 - drift, 1 + drift).
  double clock_drift = 0.05;
  /// Token routing (shared vocabulary with the other backends).
  sim::TokenRouting tokens;
};

/// Measured network behavior, aggregated over the whole run.
struct NetStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t emulated_drops = 0;  // message_loss knob, counted not sent
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_timeouts = 0;  // the measured-loss numerator
  std::uint64_t reordered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t joins = 0;   // Join handshakes acked by peers
  std::uint64_t leaves = 0;  // graceful departures observed by peers
  std::uint64_t rtt_samples = 0;
  double rtt_ms_min = 0.0;
  double rtt_ms_max = 0.0;
  double rtt_ms_sum = 0.0;

  [[nodiscard]] double rtt_ms_mean() const {
    return rtt_samples == 0 ? 0.0
                            : rtt_ms_sum / static_cast<double>(rtt_samples);
  }
  /// probe_timeouts / probes_sent -- the measured counterpart of the
  /// synthetic backends' message_loss.
  [[nodiscard]] double observed_loss() const {
    return probes_sent == 0
               ? 0.0
               : static_cast<double>(probe_timeouts) /
                     static_cast<double>(probes_sent);
  }
};

class NetSimulator final : public sim::Simulator {
 public:
  /// Socket-per-node puts a hard ceiling on N (fd budget and poll cost);
  /// gigascale runs belong on the count backend.
  static constexpr std::size_t kMaxNodes = 1024;

  /// Binds n loopback sockets immediately. Throws std::invalid_argument
  /// for n outside [2, kMaxNodes] or bad options; std::system_error when
  /// the kernel refuses a socket.
  NetSimulator(std::size_t n, core::ProtocolStateMachine machine,
               std::uint64_t seed, NetSimOptions options = {});

  [[nodiscard]] sim::Group& group() noexcept override { return group_; }
  [[nodiscard]] sim::MetricsCollector& metrics() noexcept override {
    return metrics_;
  }
  [[nodiscard]] sim::Rng& rng() noexcept override { return rng_; }
  [[nodiscard]] double now() const noexcept override { return queue_.now(); }
  [[nodiscard]] std::size_t num_states() const noexcept override {
    return group_.num_states();
  }
  [[nodiscard]] std::size_t count(std::size_t state) const override {
    return group_.count(state);
  }
  [[nodiscard]] std::size_t total_alive() const noexcept override {
    return group_.total_alive();
  }

  void seed_states(const std::vector<std::size_t>& counts) override;
  void schedule_massive_failure(double time, double fraction) override;
  void schedule_crash(sim::ProcessId pid, double time,
                      double recover_time = -1.0) override;
  void set_crash_recovery(double crash_prob,
                          double mean_downtime_periods) override;
  void attach_churn(const sim::ChurnTrace& trace,
                    double periods_per_hour) override;

  /// Advance sim time by `periods`, paced against the wall clock;
  /// metrics sample each whole period (including t = 0, like the event
  /// backend).
  void run_for(double periods) override;

  /// Measured network behavior so far (per-node trackers aggregated).
  [[nodiscard]] NetStats net_stats() const;
  [[nodiscard]] const sim::TokenStats& token_stats() const noexcept {
    return tokens_;
  }

  /// The UDP port node `pid` is currently bound to (0 while crashed).
  [[nodiscard]] std::uint16_t port_of(sim::ProcessId pid) const;

  /// SIGKILL surrogate for tests and fault drills: the node vanishes
  /// abruptly -- socket closed, timer dead, no Leave gossip -- and the
  /// peers' probe timeouts absorb it as churn.
  void kill_node(sim::ProcessId pid);

  /// Weave an external fd into the poll loop: `on_readable` runs (and
  /// must drain the fd) whenever it is readable during run_for. This is
  /// how a real service (examples/persistent_store) answers client
  /// requests while the protocol gossips underneath.
  void watch_fd(int fd, std::function<void()> on_readable);

 private:
  using Clock = std::chrono::steady_clock;

  struct ProbeContext {
    std::vector<std::optional<std::size_t>> states;
    std::size_t remaining = 0;
    std::function<void(const std::vector<std::optional<std::size_t>>&)> done;
  };
  struct PendingProbe {
    std::shared_ptr<ProbeContext> ctx;
    Clock::time_point sent_at;
  };
  struct Node {
    UdpSocket socket;
    std::uint16_t home_port = 0;  // preferred rebind port after recovery
    std::uint64_t next_seq = 1;
    double period = 1.0;  // in sim periods (drift factor applied)
    std::uint64_t timer_epoch = 0;
    std::uint64_t incarnation = 0;  // bumped per rejoin; stale acks no-op
    bool active = true;             // period timer armed (false mid-join)
    SequenceTracker tracker;
    std::unordered_map<std::uint64_t, PendingProbe> pending;
  };
  struct WatchedFd {
    int fd = -1;
    std::function<void()> on_readable;
  };

  [[nodiscard]] double sim_of(Clock::time_point wall) const;
  [[nodiscard]] Clock::time_point wall_of(double sim_time) const;

  void run_until(double t_end);
  void advance_to(double t_end);
  void poll_and_drain(Clock::time_point deadline);
  void drain_node(sim::ProcessId pid);
  void handle_packet(sim::ProcessId pid, const Packet& packet,
                     const sockaddr_in& from);

  bool emulated_drop();
  /// Stamp sender/seq and send `packet` from node `from` to `dest`.
  /// False when the datagram did not reach the kernel (emulated drop or
  /// send error) -- callers that track tokens count the drop.
  bool send_packet(sim::ProcessId from, const sockaddr_in& dest,
                   Packet packet);

  void arm_timer(sim::ProcessId pid);
  void on_tick(sim::ProcessId pid, std::uint64_t epoch);
  void run_action(sim::ProcessId pid, std::size_t action_index);
  void probe_all(
      sim::ProcessId pid, std::size_t count,
      std::function<void(const std::vector<std::optional<std::size_t>>&)>
          done);
  void resolve_probe(const std::shared_ptr<ProbeContext>& ctx,
                     std::optional<std::size_t> state);
  void route_token(sim::ProcessId pid, std::size_t token_state,
                   std::size_t to_state);

  void crash_process(sim::ProcessId pid);
  void note_mass_crashed(sim::ProcessId pid);
  void graceful_leave(sim::ProcessId pid);
  void recover_process(sim::ProcessId pid);
  void begin_join(sim::ProcessId pid, unsigned tries_left);
  void on_crash_recovery_tick(std::uint64_t epoch);
  void sample_metrics();
  void record_rtt(Clock::time_point sent_at);

  core::ProtocolStateMachine machine_;
  NetSimOptions options_;
  sim::EventQueue queue_;  // sim-time events, paced by the wall clock
  sim::Rng rng_;
  sim::Group group_;
  sim::MetricsCollector metrics_;
  std::vector<Node> nodes_;
  std::vector<sockaddr_in> addr_;  // current endpoint per node
  std::vector<WatchedFd> watched_;
  sim::TokenStats tokens_;
  NetStats stats_;  // tracker-independent counters (see net_stats())
  std::uint64_t next_probe_id_ = 1;
  double crash_prob_ = 0.0;
  double mean_downtime_ = 0.0;
  std::uint64_t churn_epoch_ = 0;
  std::uint64_t recovery_epoch_ = 0;
  double next_sample_ = 0.0;
  Clock::time_point anchor_wall_;  // wall <-> sim mapping, reset per run
  double anchor_sim_ = 0.0;
};

}  // namespace deproto::net
