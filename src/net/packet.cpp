#include "net/packet.hpp"

#include <cmath>
#include <cstring>

namespace deproto::net {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

std::uint16_t get_u16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

std::uint64_t get_u64(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

}  // namespace

bool packet_type_known(std::uint8_t value) {
  return value >= static_cast<std::uint8_t>(PacketType::Probe) &&
         value <= static_cast<std::uint8_t>(PacketType::Leave);
}

const char* packet_type_name(PacketType type) {
  switch (type) {
    case PacketType::Probe:
      return "probe";
    case PacketType::ProbeReply:
      return "probe-reply";
    case PacketType::Push:
      return "push";
    case PacketType::Token:
      return "token";
    case PacketType::Join:
      return "join";
    case PacketType::JoinAck:
      return "join-ack";
    case PacketType::Leave:
      return "leave";
  }
  return "unknown";
}

std::uint32_t coin_to_q32(double bias) {
  if (!(bias > 0.0)) return 0;
  if (bias >= 1.0) return 0xFFFFFFFFu;
  const double scaled = std::round(bias * 4294967296.0);  // 2^32
  if (scaled >= 4294967295.0) return 0xFFFFFFFFu;
  return static_cast<std::uint32_t>(scaled);
}

double q32_to_coin(std::uint32_t q) {
  if (q == 0xFFFFFFFFu) return 1.0;
  return static_cast<double>(q) / 4294967296.0;
}

std::string encode_packet(const Packet& packet) {
  std::string out;
  out.reserve(kPacketSize);
  out.append(kPacketMagic, sizeof(kPacketMagic));
  put_u16(out, kPacketVersion);
  out.push_back(static_cast<char>(packet.type));
  out.push_back(static_cast<char>(packet.state));
  put_u32(out, packet.sender);
  put_u64(out, packet.seq);
  put_u64(out, packet.tag);
  put_u32(out, packet.arg0);
  put_u32(out, packet.arg1);
  put_u32(out, packet.arg2);
  return out;
}

const char* decode_status_name(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::Ok:
      return "ok";
    case DecodeStatus::Truncated:
      return "truncated";
    case DecodeStatus::BadMagic:
      return "bad-magic";
    case DecodeStatus::BadVersion:
      return "bad-version";
    case DecodeStatus::BadType:
      return "bad-type";
    case DecodeStatus::BadLength:
      return "bad-length";
  }
  return "unknown";
}

DecodeStatus decode_packet(const char* data, std::size_t n, Packet* out) {
  if (n < kPacketSize) return DecodeStatus::Truncated;
  if (std::memcmp(data, kPacketMagic, sizeof(kPacketMagic)) != 0) {
    return DecodeStatus::BadMagic;
  }
  if (get_u16(data + 4) != kPacketVersion) return DecodeStatus::BadVersion;
  const auto type = static_cast<std::uint8_t>(data[6]);
  if (!packet_type_known(type)) return DecodeStatus::BadType;
  if (n > kPacketSize) return DecodeStatus::BadLength;
  out->type = static_cast<PacketType>(type);
  out->state = static_cast<std::uint8_t>(data[7]);
  out->sender = get_u32(data + 8);
  out->seq = get_u64(data + 12);
  out->tag = get_u64(data + 20);
  out->arg0 = get_u32(data + 28);
  out->arg1 = get_u32(data + 32);
  out->arg2 = get_u32(data + 36);
  return DecodeStatus::Ok;
}

SequenceTracker::Arrival SequenceTracker::observe(std::uint32_t sender,
                                                  std::uint64_t seq) {
  ++received_;
  PeerSeq& peer = peers_[sender];
  if (!peer.any) {
    peer.any = true;
    peer.highest = seq;
    peer.window = 1;
    return Arrival::InOrder;
  }
  if (seq > peer.highest) {
    const std::uint64_t shift = seq - peer.highest;
    peer.window = shift >= 64 ? 1 : (peer.window << shift) | 1;
    peer.highest = seq;
    return Arrival::InOrder;
  }
  const std::uint64_t age = peer.highest - seq;
  if (age >= 64) {
    // Too old to tell a duplicate from a straggler; count with the
    // reorders (both mean "arrived far out of order").
    ++reordered_;
    return Arrival::Stale;
  }
  const std::uint64_t bit = std::uint64_t{1} << age;
  if ((peer.window & bit) != 0) {
    ++duplicates_;
    return Arrival::Duplicate;
  }
  peer.window |= bit;
  ++reordered_;
  return Arrival::Reordered;
}

}  // namespace deproto::net
