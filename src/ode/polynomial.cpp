#include "ode/polynomial.hpp"

#include <cmath>
#include <sstream>

namespace deproto::ode {

double evaluate(const Polynomial& p, std::span<const double> x) {
  double v = 0.0;
  for (const Term& t : p) v += t.evaluate(x);
  return v;
}

Polynomial simplified(const Polynomial& p, double tol) {
  Polynomial out;
  for (const Term& t : p) {
    bool merged = false;
    for (Term& u : out) {
      if (u.same_monomial(t)) {
        u = Term(u.coefficient() + t.coefficient(), u.exponents());
        merged = true;
        break;
      }
    }
    if (!merged) out.push_back(t);
  }
  Polynomial pruned;
  for (const Term& t : out) {
    if (std::abs(t.coefficient()) > tol) pruned.push_back(t);
  }
  return pruned;
}

Polynomial sum(const Polynomial& p, const Polynomial& q) {
  Polynomial out = p;
  out.insert(out.end(), q.begin(), q.end());
  return out;
}

Polynomial negated(const Polynomial& p) {
  Polynomial out;
  out.reserve(p.size());
  for (const Term& t : p) out.push_back(t.negated());
  return out;
}

Polynomial scaled(const Polynomial& p, double k) {
  Polynomial out;
  out.reserve(p.size());
  for (const Term& t : p) out.push_back(t.scaled(k));
  return out;
}

Polynomial derivative(const Polynomial& p, std::size_t var) {
  Polynomial out;
  for (const Term& t : p) {
    Term d = t.derivative(var);
    if (d.coefficient() != 0.0) out.push_back(d);
  }
  return out;
}

bool equivalent(const Polynomial& p, const Polynomial& q, double tol) {
  return simplified(sum(p, negated(q)), tol).empty();
}

std::string to_string(const Polynomial& p,
                      std::span<const std::string> names) {
  if (p.empty()) return "0";
  std::ostringstream out;
  bool first = true;
  for (const Term& t : p) {
    if (!first) out << ' ';
    out << t.to_string(names);
    first = false;
  }
  return out.str();
}

}  // namespace deproto::ode
