#include "ode/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <vector>

namespace deproto::ode {

namespace {

/// Minimal cursor over one line of input.
class Cursor {
 public:
  Cursor(const std::string& text, std::size_t line)
      : text_(text), line_(line) {}

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool done() {
    skip_space();
    return pos_ >= text_.size();
  }

  [[nodiscard]] char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c, const char* what) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "' (" + what + ")");
    }
  }

  /// Identifier: [A-Za-z_][A-Za-z0-9_]*.
  [[nodiscard]] std::optional<std::string> identifier() {
    skip_space();
    if (pos_ >= text_.size()) return std::nullopt;
    const auto first = static_cast<unsigned char>(text_[pos_]);
    if (!std::isalpha(first) && first != '_') return std::nullopt;
    std::size_t end = pos_;
    while (end < text_.size()) {
      const auto c = static_cast<unsigned char>(text_[end]);
      if (!std::isalnum(c) && c != '_') break;
      ++end;
    }
    std::string name = text_.substr(pos_, end - pos_);
    pos_ = end;
    return name;
  }

  /// Unsigned decimal/scientific number.
  [[nodiscard]] std::optional<double> number() {
    skip_space();
    if (pos_ >= text_.size()) return std::nullopt;
    const char* begin = text_.c_str() + pos_;
    if (!std::isdigit(static_cast<unsigned char>(*begin)) &&
        *begin != '.') {
      return std::nullopt;
    }
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) return std::nullopt;
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  [[nodiscard]] std::optional<unsigned> integer() {
    skip_space();
    std::size_t end = pos_;
    while (end < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[end]))) {
      ++end;
    }
    if (end == pos_) return std::nullopt;
    const unsigned value = static_cast<unsigned>(
        std::strtoul(text_.substr(pos_, end - pos_).c_str(), nullptr, 10));
    pos_ = end;
    return value;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(line_, message + " near '" +
                                text_.substr(std::min(pos_, text_.size())) +
                                "'");
  }

 private:
  const std::string& text_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

/// One signed term: [sign] [coeff ['*']] var[^exp] ['*' var[^exp]]...
Term parse_term(Cursor& cursor, const EquationSystem& sys, double sign) {
  double coeff = sign;
  bool saw_anything = false;

  if (auto value = cursor.number()) {
    coeff *= *value;
    saw_anything = true;
    // optional '*' between coefficient and first variable
    cursor.consume('*');
  }

  std::vector<unsigned> exps(sys.num_vars(), 0U);
  while (true) {
    auto name = cursor.identifier();
    if (!name) break;
    saw_anything = true;
    const auto var = sys.index_of(*name);
    if (!var) cursor.fail("unknown variable '" + *name + "'");
    unsigned exp = 1;
    if (cursor.consume('^')) {
      auto e = cursor.integer();
      if (!e) cursor.fail("expected integer exponent");
      exp = *e;
    }
    exps[*var] += exp;
    if (!cursor.consume('*')) break;
  }

  if (!saw_anything) cursor.fail("expected a term");
  return Term(coeff, std::move(exps));
}

Polynomial parse_rhs(Cursor& cursor, const EquationSystem& sys) {
  Polynomial poly;
  // Leading sign is optional; default '+'.
  double sign = 1.0;
  if (cursor.consume('-')) {
    sign = -1.0;
  } else {
    cursor.consume('+');
  }
  poly.push_back(parse_term(cursor, sys, sign));
  while (!cursor.done()) {
    if (cursor.consume('+')) {
      sign = 1.0;
    } else if (cursor.consume('-')) {
      sign = -1.0;
    } else {
      cursor.fail("expected '+' or '-' between terms");
    }
    poly.push_back(parse_term(cursor, sys, sign));
  }
  return poly;
}

/// Left-hand sides: "x'" or "dx/dt".
std::optional<std::string> parse_lhs(Cursor& cursor) {
  auto name = cursor.identifier();
  if (!name) return std::nullopt;
  if (cursor.consume('\'')) return name;
  // dX/dt form: the identifier must start with 'd'.
  if (name->size() > 1 && (*name)[0] == 'd' && cursor.consume('/')) {
    auto dt = cursor.identifier();
    if (dt && *dt == "dt") return name->substr(1);
  }
  return std::nullopt;
}

std::string strip_comment(const std::string& line) {
  const std::size_t hash = line.find('#');
  return hash == std::string::npos ? line : line.substr(0, hash);
}

bool blank(const std::string& line) {
  for (char c : line) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

EquationSystem parse_system(const std::string& text) {
  // Pass 1: collect variable names from left-hand sides, in order.
  std::vector<std::string> names;
  {
    std::istringstream in(text);
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(in, raw)) {
      ++line_no;
      const std::string line = strip_comment(raw);
      if (blank(line)) continue;
      Cursor cursor(line, line_no);
      auto lhs = parse_lhs(cursor);
      if (!lhs) cursor.fail("expected \"x' =\" or \"dx/dt =\"");
      for (const std::string& existing : names) {
        if (existing == *lhs) {
          throw ParseError(line_no, "duplicate equation for " + *lhs);
        }
      }
      names.push_back(*lhs);
    }
  }
  if (names.empty()) {
    throw ParseError(0, "no equations found");
  }

  EquationSystem sys(names);

  // Pass 2: parse the right-hand sides.
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = strip_comment(raw);
    if (blank(line)) continue;
    Cursor cursor(line, line_no);
    const auto lhs = parse_lhs(cursor);
    cursor.expect('=', "after the left-hand side");
    for (Term& term : parse_rhs(cursor, sys)) {
      sys.add_term(sys.require(*lhs), std::move(term));
    }
  }
  return sys;
}

Polynomial parse_polynomial(const std::string& text,
                            const EquationSystem& sys) {
  Cursor cursor(text, 1);
  Polynomial poly = parse_rhs(cursor, sys);
  if (!cursor.done()) cursor.fail("trailing input");
  return poly;
}

}  // namespace deproto::ode
