#pragma once

// Section 7 of the paper: rewriting techniques that bring an arbitrary
// equation system into mappable form (complete + polynomial / restricted
// polynomial), plus the constant-expansion step used by Tokenizing
// (Section 6).

#include <string>

#include "ode/equation_system.hpp"

namespace deproto::ode {

/// Rewrite into an equivalent *complete* system by adding a slack variable
/// z = 1 - Sum_x x with z-dot = -Sum_x f_x(X). (Section 7, "Rewriting an
/// equation into a Complete form"; this is exactly the LV eq.(6) -> eq.(7)
/// step once the z-dot terms are expanded against the pairing.)
/// Throws if `slack_name` already names a variable.
[[nodiscard]] EquationSystem complete(const EquationSystem& sys,
                                      const std::string& slack_name = "z");

/// Normalize a complete system whose variables sum to N instead of 1:
/// substitute x = N * x'. A term c * prod y^e of total degree d becomes
/// c * N^{d-1} * prod y'^e. (Section 7, "Normalizing"; the epidemic system
/// (0) is the N-normalization of x-dot = -xy/N.)
[[nodiscard]] EquationSystem normalize(const EquationSystem& sys, double N);

/// Replace every bare-constant term +/-c by +/-c * (Sum_v v). Valid for
/// complete systems with Sum v = 1; turns constants into degree-1 terms so
/// Tokenizing can pick an executor variable. (Section 6.)
[[nodiscard]] EquationSystem expand_constants(const EquationSystem& sys);

/// A single higher-order ODE  x^(k) = g(x, x^(1), ..., x^(k-1)),  g
/// polynomial over variables indexed 0..k-1 (variable j = j-th derivative).
struct HigherOrderEquation {
  unsigned order = 1;       // k >= 1
  Polynomial rhs;           // g, exponents indexed by derivative order
  std::string base_name = "x";
};

/// Section 7, "Mapping Differential equations of higher Orders": rewrite as
/// a first-order system with variables x, x_1, ..., x_{k-1}:
///     x-dot = x_1; x_1-dot = x_2; ...; x_{k-1}-dot = g(...).
/// When `add_slack` is set, a slack variable closes the system into complete
/// form (the paper's example: x-ddot + x-dot = x becomes
/// x-dot = u; u-dot = x - u; z-dot = -x).
[[nodiscard]] EquationSystem reduce_order(const HigherOrderEquation& eq,
                                          bool add_slack = true,
                                          const std::string& slack_name = "z");

/// The inverse of complete(): eliminate the *last* variable of a complete
/// system using the conservation law  x_last = total - Sum_{i<m} x_i,
/// returning the (m-1)-variable system restricted to the invariant simplex.
/// Substituted powers are expanded multinomially, so the result is again
/// polynomial (e.g. lv_partitionable -> lv_original with total = 1).
[[nodiscard]] EquationSystem eliminate_last(const EquationSystem& sys,
                                            double total = 1.0);

}  // namespace deproto::ode
