#include "ode/catalog.hpp"

namespace deproto::ode::catalog {

EquationSystem epidemic() {
  EquationSystem sys({"x", "y"});
  sys.add_term("x", -1.0, {{"x", 1}, {"y", 1}});
  sys.add_term("y", +1.0, {{"x", 1}, {"y", 1}});
  return sys;
}

EquationSystem epidemic_raw(double N) {
  EquationSystem sys({"x", "y"});
  sys.add_term("x", -1.0 / N, {{"x", 1}, {"y", 1}});
  sys.add_term("y", +1.0 / N, {{"x", 1}, {"y", 1}});
  return sys;
}

EquationSystem endemic(double beta, double gamma, double alpha) {
  EquationSystem sys({"x", "y", "z"});
  sys.add_term("x", -beta, {{"x", 1}, {"y", 1}});
  sys.add_term("x", +alpha, {{"z", 1}});
  sys.add_term("y", +beta, {{"x", 1}, {"y", 1}});
  sys.add_term("y", -gamma, {{"y", 1}});
  sys.add_term("z", +gamma, {{"y", 1}});
  sys.add_term("z", -alpha, {{"z", 1}});
  return sys;
}

EquationSystem lv_original() {
  EquationSystem sys({"x", "y"});
  sys.add_term("x", +3.0, {{"x", 1}});
  sys.add_term("x", -3.0, {{"x", 2}});
  sys.add_term("x", -6.0, {{"x", 1}, {"y", 1}});
  sys.add_term("y", +3.0, {{"y", 1}});
  sys.add_term("y", -3.0, {{"y", 2}});
  sys.add_term("y", -6.0, {{"x", 1}, {"y", 1}});
  return sys;
}

EquationSystem lv_partitionable() {
  EquationSystem sys({"x", "y", "z"});
  sys.add_term("x", +3.0, {{"x", 1}, {"z", 1}});
  sys.add_term("x", -3.0, {{"x", 1}, {"y", 1}});
  sys.add_term("y", +3.0, {{"y", 1}, {"z", 1}});
  sys.add_term("y", -3.0, {{"x", 1}, {"y", 1}});
  sys.add_term("z", -3.0, {{"x", 1}, {"z", 1}});
  sys.add_term("z", -3.0, {{"y", 1}, {"z", 1}});
  // Deliberately two distinct +3xy terms: each pairs with one of the -3xy
  // terms above (the partition witness needs them separate).
  sys.add_term("z", +3.0, {{"x", 1}, {"y", 1}});
  sys.add_term("z", +3.0, {{"x", 1}, {"y", 1}});
  return sys;
}

EquationSystem endemic_linearized(double sigma, double alpha, double gamma) {
  EquationSystem sys({"t", "u"});
  sys.add_term("t", -(sigma + alpha), {{"t", 1}});
  sys.add_term("t", -sigma * (gamma + alpha), {{"u", 1}});
  sys.add_term("u", +1.0, {{"t", 1}});
  return sys;
}

HigherOrderEquation second_order_example() {
  HigherOrderEquation eq;
  eq.order = 2;
  eq.base_name = "x";
  // g(x, x') = x - x'; derivative-order variables: id 0 = x, id 1 = x'.
  eq.rhs.push_back(Term(+1.0, {1U, 0U}));
  eq.rhs.push_back(Term(-1.0, {0U, 1U}));
  return eq;
}

EquationSystem sir(double beta, double gamma) {
  EquationSystem sys({"x", "y", "z"});
  sys.add_term("x", -beta, {{"x", 1}, {"y", 1}});
  sys.add_term("y", +beta, {{"x", 1}, {"y", 1}});
  sys.add_term("y", -gamma, {{"y", 1}});
  sys.add_term("z", +gamma, {{"y", 1}});
  return sys;
}

EquationSystem logistic(double r) {
  EquationSystem sys({"x"});
  sys.add_term("x", +r, {{"x", 1}});
  sys.add_term("x", -r, {{"x", 2}});
  return sys;
}

EquationSystem invitation(double c) {
  EquationSystem sys({"x", "y"});
  sys.add_term("x", -c, {{"y", 1}});
  sys.add_term("y", +c, {{"y", 1}});
  return sys;
}

EquationSystem constant_flow(double c) {
  EquationSystem sys({"x", "y"});
  sys.add_term("x", -c, {});
  sys.add_term("y", +c, {});
  return sys;
}

}  // namespace deproto::ode::catalog
