#pragma once

// A polynomial is a flat list of signed monomial terms. The framework keeps
// the term list *un-merged* on purpose: the mapping rules of Sections 3 and 6
// operate on individual terms (e.g. the LV system deliberately carries two
// separate +3xy terms in z-dot so that each pairs with a distinct negative
// term). `simplified` merges like terms when algebraic normal form is wanted.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ode/term.hpp"

namespace deproto::ode {

using Polynomial = std::vector<Term>;

/// Evaluate the polynomial at `x`.
[[nodiscard]] double evaluate(const Polynomial& p, std::span<const double> x);

/// Merge like terms (same monomial) and drop terms with |c| <= tol.
[[nodiscard]] Polynomial simplified(const Polynomial& p, double tol = 1e-12);

/// p + q, without merging.
[[nodiscard]] Polynomial sum(const Polynomial& p, const Polynomial& q);

/// -p.
[[nodiscard]] Polynomial negated(const Polynomial& p);

/// k * p.
[[nodiscard]] Polynomial scaled(const Polynomial& p, double k);

/// Partial derivative term-by-term (zero terms dropped).
[[nodiscard]] Polynomial derivative(const Polynomial& p, std::size_t var);

/// True when simplified(p - q) is empty at tolerance `tol`.
[[nodiscard]] bool equivalent(const Polynomial& p, const Polynomial& q,
                              double tol = 1e-9);

/// Render as e.g. "+1*x*y -0.5*z" given variable names.
[[nodiscard]] std::string to_string(const Polynomial& p,
                                    std::span<const std::string> names);

}  // namespace deproto::ode
