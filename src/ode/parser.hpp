#pragma once

// Text format for equation systems, so protocols can be synthesized from a
// plain file (see tools/deproto-synth). One equation per line:
//
//     x' = -0.4*x*y + 0.05*z      # comments run to end of line
//     dy/dt = 0.4*x*y - 0.1*y
//     z' = 0.1*y - 0.05*z
//
// Variables are declared by appearing on a left-hand side; right-hand
// sides may only use declared variables. Terms are coefficient-times-
// monomial products: [coeff] [* var[^exp]]..., with an optional leading
// sign. Exponents are non-negative integers.

#include <cstddef>
#include <stdexcept>
#include <string>

#include "ode/equation_system.hpp"

namespace deproto::ode {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parse a whole system from text. Throws ParseError on malformed input.
[[nodiscard]] EquationSystem parse_system(const std::string& text);

/// Parse a single right-hand-side expression over the given system's
/// variables (used by tests and interactive tooling).
[[nodiscard]] Polynomial parse_polynomial(const std::string& text,
                                          const EquationSystem& sys);

}  // namespace deproto::ode
