#pragma once

// Named equation systems from the paper (plus a few classics used in tests).
// All functions return freshly-built systems in *fraction* notation
// (variables are fractions of processes, Sum = 1) unless stated otherwise.

#include "ode/equation_system.hpp"
#include "ode/rewriting.hpp"

namespace deproto::ode::catalog {

/// Eq. (0): the pull-epidemic system  x-dot = -xy, y-dot = +xy
/// (x susceptible, y infected; fractions).
[[nodiscard]] EquationSystem epidemic();

/// The raw epidemic system in *numbers* notation before normalization:
/// x-dot = -xy/N, y-dot = +xy/N (Section 7, "Normalizing" example).
[[nodiscard]] EquationSystem epidemic_raw(double N);

/// Eq. (1): the endemic (SIRS-style) system of Case Study I:
///   x-dot = -beta*x*y + alpha*z
///   y-dot = +beta*x*y - gamma*y
///   z-dot = +gamma*y  - alpha*z
/// x receptive/susceptible, y stash/infected, z averse/immune.
[[nodiscard]] EquationSystem endemic(double beta, double gamma, double alpha);

/// Eq. (6): the raw Lotka-Volterra competition system (x, y only):
///   x-dot = 3x(1 - x - 2y),  y-dot = 3y(1 - y - 2x).
[[nodiscard]] EquationSystem lv_original();

/// Eq. (7): the rewritten, completely partitionable LV system over x, y, z:
///   x-dot = +3xz - 3xy
///   y-dot = +3yz - 3xy
///   z-dot = -3xz - 3yz + 3xy + 3xy     (two distinct +3xy terms)
[[nodiscard]] EquationSystem lv_partitionable();

/// Eq. (4): the linearized endemic perturbation system  T-dot = A T  with
///   A = [ -(sigma+alpha)   -sigma*(gamma+alpha) ]
///       [       1                    0          ]
/// over variables (t, u).
[[nodiscard]] EquationSystem endemic_linearized(double sigma, double alpha,
                                                double gamma);

/// Section 7's higher-order example  x-ddot + x-dot = x, as a
/// HigherOrderEquation ready for reduce_order().
[[nodiscard]] HigherOrderEquation second_order_example();

/// Classic SIR: x-dot = -beta*x*y, y-dot = beta*x*y - gamma*y,
/// z-dot = gamma*y. Complete and completely partitionable.
[[nodiscard]] EquationSystem sir(double beta, double gamma);

/// Logistic growth x-dot = r*x*(1-x) = r*x - r*x^2 over the single
/// variable x (not complete; used to exercise rewriting).
[[nodiscard]] EquationSystem logistic(double r);

/// Two-state "invitation" system with a non-restricted negative term:
///   x-dot = -c*y, y-dot = +c*y.
/// Polynomial + completely partitionable, but the -c*y term in f_x has
/// i_x = 0, so mapping needs Tokenizing (Section 6).
[[nodiscard]] EquationSystem invitation(double c);

/// Constant-flow system  x-dot = -c, y-dot = +c : polynomial + completely
/// partitionable with bare-constant terms; exercises expand_constants().
[[nodiscard]] EquationSystem constant_flow(double c);

}  // namespace deproto::ode::catalog
