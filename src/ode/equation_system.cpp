#include "ode/equation_system.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace deproto::ode {

EquationSystem::EquationSystem(std::vector<std::string> variable_names)
    : names_(std::move(variable_names)) {
  std::unordered_set<std::string> seen;
  for (const auto& n : names_) {
    if (n.empty()) {
      throw std::invalid_argument("EquationSystem: empty variable name");
    }
    if (!seen.insert(n).second) {
      throw std::invalid_argument("EquationSystem: duplicate variable " + n);
    }
  }
  rhs_.resize(names_.size());
}

const std::string& EquationSystem::name(std::size_t var) const {
  if (var >= names_.size()) {
    throw std::out_of_range("EquationSystem::name: bad variable id");
  }
  return names_[var];
}

std::optional<std::size_t> EquationSystem::index_of(
    const std::string& n) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == n) return i;
  }
  return std::nullopt;
}

std::size_t EquationSystem::require(const std::string& n) const {
  if (auto idx = index_of(n)) return *idx;
  throw std::invalid_argument("EquationSystem: unknown variable " + n);
}

std::size_t EquationSystem::add_variable(const std::string& n) {
  if (index_of(n)) {
    throw std::invalid_argument("EquationSystem: duplicate variable " + n);
  }
  if (n.empty()) {
    throw std::invalid_argument("EquationSystem: empty variable name");
  }
  names_.push_back(n);
  rhs_.emplace_back();
  return names_.size() - 1;
}

void EquationSystem::add_term(std::size_t var, Term term) {
  if (var >= rhs_.size()) {
    throw std::out_of_range("EquationSystem::add_term: bad variable id");
  }
  for (std::size_t v = num_vars(); v < term.exponents().size(); ++v) {
    if (term.exponents()[v] != 0) {
      throw std::invalid_argument(
          "EquationSystem::add_term: term references unknown variable id " +
          std::to_string(v));
    }
  }
  rhs_[var].push_back(std::move(term));
}

void EquationSystem::add_term(const std::string& var, double coefficient,
                              std::initializer_list<Power> powers) {
  std::vector<unsigned> exps(num_vars(), 0U);
  for (const Power& p : powers) exps[require(p.var)] += p.exp;
  add_term(require(var), Term(coefficient, std::move(exps)));
}

const Polynomial& EquationSystem::rhs(std::size_t var) const {
  if (var >= rhs_.size()) {
    throw std::out_of_range("EquationSystem::rhs: bad variable id");
  }
  return rhs_[var];
}

const Polynomial& EquationSystem::rhs(const std::string& var) const {
  return rhs_[require(var)];
}

void EquationSystem::evaluate(std::span<const double> x,
                              std::span<double> dxdt) const {
  if (x.size() < num_vars() || dxdt.size() < num_vars()) {
    throw std::invalid_argument("EquationSystem::evaluate: size mismatch");
  }
  for (std::size_t v = 0; v < num_vars(); ++v) {
    dxdt[v] = ode::evaluate(rhs_[v], x);
  }
}

std::size_t EquationSystem::total_terms() const noexcept {
  std::size_t n = 0;
  for (const auto& p : rhs_) n += p.size();
  return n;
}

std::vector<std::size_t> EquationSystem::lexicographic_order() const {
  std::vector<std::size_t> order(num_vars());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return names_[a] < names_[b];
  });
  return order;
}

EquationSystem EquationSystem::simplified(double tol) const {
  EquationSystem out(names_);
  for (std::size_t v = 0; v < num_vars(); ++v) {
    for (Term& t : ode::simplified(rhs_[v], tol)) {
      out.add_term(v, std::move(t));
    }
  }
  return out;
}

EquationSystem EquationSystem::scaled(double k) const {
  EquationSystem out(names_);
  for (std::size_t v = 0; v < num_vars(); ++v) {
    for (const Term& t : rhs_[v]) out.add_term(v, t.scaled(k));
  }
  return out;
}

std::string EquationSystem::to_string() const {
  std::ostringstream out;
  for (std::size_t v = 0; v < num_vars(); ++v) {
    out << 'd' << names_[v] << "/dt = "
        << ode::to_string(rhs_[v], std::span<const std::string>(names_))
        << '\n';
  }
  return out.str();
}

bool equivalent(const EquationSystem& a, const EquationSystem& b, double tol) {
  if (a.names() != b.names()) return false;
  for (std::size_t v = 0; v < a.num_vars(); ++v) {
    if (!equivalent(a.rhs(v), b.rhs(v), tol)) return false;
  }
  return true;
}

}  // namespace deproto::ode
