#include "ode/taxonomy.hpp"

#include <cmath>
#include <sstream>

namespace deproto::ode {

bool is_complete(const EquationSystem& sys, double tol) {
  Polynomial total;
  for (std::size_t v = 0; v < sys.num_vars(); ++v) {
    for (const Term& t : sys.rhs(v)) total.push_back(t);
  }
  return simplified(total, tol).empty();
}

PartitionResult partition_terms(const EquationSystem& sys, double tol) {
  // Flatten all terms, then greedily match each negative term with an unused
  // positive term carrying the same monomial and opposite coefficient.
  struct Entry {
    TermRef ref;
    const Term* term;
    bool used = false;
  };
  std::vector<Entry> entries;
  for (std::size_t e = 0; e < sys.num_vars(); ++e) {
    const Polynomial& p = sys.rhs(e);
    for (std::size_t t = 0; t < p.size(); ++t) {
      entries.push_back(Entry{TermRef{e, t}, &p[t]});
    }
  }

  PartitionResult result;
  for (Entry& neg : entries) {
    if (neg.used || neg.term->coefficient() >= 0) continue;
    for (Entry& pos : entries) {
      if (pos.used || &pos == &neg) continue;
      if (pos.term->coefficient() <= 0) continue;
      if (!pos.term->same_monomial(*neg.term)) continue;
      if (std::abs(pos.term->coefficient() + neg.term->coefficient()) > tol) {
        continue;
      }
      neg.used = pos.used = true;
      result.pairs.push_back(PartitionPair{neg.ref, pos.ref});
      break;
    }
  }
  for (const Entry& e : entries) {
    if (!e.used) result.unpaired.push_back(e.ref);
  }
  return result;
}

bool is_completely_partitionable(const EquationSystem& sys, double tol) {
  if (!is_complete(sys, tol)) return false;
  return partition_terms(sys, tol).unpaired.empty();
}

bool is_restricted_polynomial(const EquationSystem& sys) {
  for (std::size_t v = 0; v < sys.num_vars(); ++v) {
    for (const Term& t : sys.rhs(v)) {
      if (t.coefficient() < 0 && t.exponent(v) < 1) return false;
    }
  }
  return true;
}

TaxonomyReport classify(const EquationSystem& sys, double tol) {
  TaxonomyReport report;
  report.polynomial = true;
  report.complete = is_complete(sys, tol);
  report.restricted_polynomial = is_restricted_polynomial(sys);

  std::ostringstream detail;
  if (!report.complete) {
    detail << "not complete: right-hand sides do not sum to zero; ";
  }
  PartitionResult partition = partition_terms(sys, tol);
  if (report.complete && partition.unpaired.empty()) {
    report.completely_partitionable = true;
    report.partition = std::move(partition.pairs);
  } else if (!partition.unpaired.empty()) {
    detail << partition.unpaired.size()
           << " term(s) cannot be paired as {+T, -T}; ";
  }
  if (!report.restricted_polynomial) {
    detail << "not restricted polynomial: some negative term in f_x has "
              "i_x = 0; ";
  }
  report.detail = detail.str();
  return report;
}

}  // namespace deproto::ode
