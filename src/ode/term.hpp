#pragma once

// Polynomial terms of the form  +/- c * prod_{y in X} y^{i_y}  -- the basic
// syntactic unit of the equation systems handled by the PODC'04 framework.
// Exponents are stored densely, indexed by variable id; variable ids are
// owned by the enclosing EquationSystem.

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace deproto::ode {

/// One signed monomial term: coefficient() * prod_v v^exponent(v).
/// The sign of the term lives in the coefficient.
class Term {
 public:
  Term() = default;

  /// Construct from a coefficient and a dense exponent vector.
  /// Trailing zero exponents are permitted and ignored by comparisons.
  Term(double coefficient, std::vector<unsigned> exponents);

  [[nodiscard]] double coefficient() const noexcept { return coeff_; }

  /// Dense exponent vector; may be shorter than the system's variable count.
  [[nodiscard]] const std::vector<unsigned>& exponents() const noexcept {
    return exps_;
  }

  /// Exponent of variable `var`; 0 when `var` is beyond the stored vector.
  [[nodiscard]] unsigned exponent(std::size_t var) const noexcept;

  /// Sum of all exponents; the paper writes |T| for the total number of
  /// variable occurrences in a term (used by the failure factor and the
  /// message-complexity bound).
  [[nodiscard]] unsigned total_degree() const noexcept;

  /// Alias for total_degree(): |T| in the paper's notation.
  [[nodiscard]] unsigned variable_occurrences() const noexcept {
    return total_degree();
  }

  /// True when every exponent is zero (the term is a bare constant +/- c).
  [[nodiscard]] bool is_constant() const noexcept;

  /// Number of distinct variables with a non-zero exponent.
  [[nodiscard]] std::size_t distinct_variables() const noexcept;

  /// True when both terms share the same monomial (exponents equal modulo
  /// trailing zeros), regardless of coefficient.
  [[nodiscard]] bool same_monomial(const Term& other) const noexcept;

  /// Evaluate c * prod x_v^{e_v} at the point `x` (x.size() may exceed the
  /// stored exponent vector).
  [[nodiscard]] double evaluate(std::span<const double> x) const;

  /// Term with the opposite sign.
  [[nodiscard]] Term negated() const;

  /// Term with the coefficient multiplied by `k`.
  [[nodiscard]] Term scaled(double k) const;

  /// Term with variable `var`'s exponent incremented by `delta`.
  [[nodiscard]] Term with_extra_exponent(std::size_t var, unsigned delta) const;

  /// Partial derivative with respect to variable `var`:
  /// d/dv (c v^e ...) = (c*e) v^{e-1} ...; the zero term when e == 0.
  [[nodiscard]] Term derivative(std::size_t var) const;

  /// Grow the exponent vector with zeros up to `n` entries.
  void resize(std::size_t n);

  /// Render as e.g. "-0.5*x^2*y" given variable names.
  [[nodiscard]] std::string to_string(
      std::span<const std::string> names) const;

 private:
  double coeff_ = 0.0;
  std::vector<unsigned> exps_;
};

/// Convenience factory: coefficient plus (variable id, exponent) pairs.
[[nodiscard]] Term make_term(
    double coefficient,
    std::initializer_list<std::pair<std::size_t, unsigned>> powers);

}  // namespace deproto::ode
