#pragma once

// EquationSystem: a system of first-order, degree-1 autonomous ODEs
//     X-dot = f(X),   f polynomial,
// exactly the class of source systems the PODC'04 framework translates.
// Variables are interned by name; their ids index both the state vector used
// by the integrators and the exponent vectors of terms.

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ode/polynomial.hpp"

namespace deproto::ode {

/// (variable name, exponent) pair used by the name-based term builder.
struct Power {
  std::string var;
  unsigned exp = 1;
};

class EquationSystem {
 public:
  /// Create a system over the given variables, all right-hand sides zero.
  /// Names must be unique and non-empty.
  explicit EquationSystem(std::vector<std::string> variable_names);

  [[nodiscard]] std::size_t num_vars() const noexcept { return names_.size(); }

  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

  [[nodiscard]] const std::string& name(std::size_t var) const;

  /// Id of the named variable, or nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> index_of(const std::string& n) const;

  /// Id of the named variable; throws when absent.
  [[nodiscard]] std::size_t require(const std::string& n) const;

  /// Append a fresh variable (rhs zero); returns its id.
  std::size_t add_variable(const std::string& n);

  /// Append `term` to the rhs of d(var)/dt.
  void add_term(std::size_t var, Term term);

  /// Name-based convenience: add coefficient * prod powers to d(var)/dt.
  void add_term(const std::string& var, double coefficient,
                std::initializer_list<Power> powers);

  [[nodiscard]] const Polynomial& rhs(std::size_t var) const;
  [[nodiscard]] const Polynomial& rhs(const std::string& var) const;

  /// All right-hand sides, indexed by variable id.
  [[nodiscard]] const std::vector<Polynomial>& equations() const noexcept {
    return rhs_;
  }

  /// Evaluate f(x) into dxdt (both sized num_vars()).
  void evaluate(std::span<const double> x, std::span<double> dxdt) const;

  /// Total number of terms across all equations.
  [[nodiscard]] std::size_t total_terms() const noexcept;

  /// Variable ids sorted lexicographically by name. The One-Time-Sampling
  /// rule matches sampled processes against variables in this order.
  [[nodiscard]] std::vector<std::size_t> lexicographic_order() const;

  /// Copy with every rhs put in algebraic normal form (like terms merged,
  /// near-zero terms dropped).
  [[nodiscard]] EquationSystem simplified(double tol = 1e-12) const;

  /// Copy with every rhs scaled by k (models running the protocol clock at a
  /// different rate; synthesize() maps the source system to p * f).
  [[nodiscard]] EquationSystem scaled(double k) const;

  /// Human-readable rendering, one "dx/dt = ..." line per variable.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> names_;
  std::vector<Polynomial> rhs_;
};

/// True when the two systems have identical variables (same names in the
/// same order) and algebraically equivalent right-hand sides.
[[nodiscard]] bool equivalent(const EquationSystem& a, const EquationSystem& b,
                              double tol = 1e-9);

}  // namespace deproto::ode
