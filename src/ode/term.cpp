#include "ode/term.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace deproto::ode {

Term::Term(double coefficient, std::vector<unsigned> exponents)
    : coeff_(coefficient), exps_(std::move(exponents)) {
  if (!std::isfinite(coeff_)) {
    throw std::invalid_argument("Term: coefficient must be finite");
  }
}

unsigned Term::exponent(std::size_t var) const noexcept {
  return var < exps_.size() ? exps_[var] : 0U;
}

unsigned Term::total_degree() const noexcept {
  unsigned d = 0;
  for (unsigned e : exps_) d += e;
  return d;
}

bool Term::is_constant() const noexcept { return total_degree() == 0; }

std::size_t Term::distinct_variables() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(exps_.begin(), exps_.end(), [](unsigned e) { return e > 0; }));
}

bool Term::same_monomial(const Term& other) const noexcept {
  const std::size_t n = std::max(exps_.size(), other.exps_.size());
  for (std::size_t v = 0; v < n; ++v) {
    if (exponent(v) != other.exponent(v)) return false;
  }
  return true;
}

double Term::evaluate(std::span<const double> x) const {
  double value = coeff_;
  for (std::size_t v = 0; v < exps_.size(); ++v) {
    const unsigned e = exps_[v];
    if (e == 0) continue;
    if (v >= x.size()) {
      throw std::out_of_range("Term::evaluate: point has too few coordinates");
    }
    double p = x[v];
    // Small integer exponents dominate in this domain; repeated multiply is
    // both faster and exactly reproducible, unlike std::pow.
    double acc = 1.0;
    for (unsigned k = 0; k < e; ++k) acc *= p;
    value *= acc;
  }
  return value;
}

Term Term::negated() const { return Term(-coeff_, exps_); }

Term Term::scaled(double k) const { return Term(coeff_ * k, exps_); }

Term Term::with_extra_exponent(std::size_t var, unsigned delta) const {
  std::vector<unsigned> e = exps_;
  if (var >= e.size()) e.resize(var + 1, 0U);
  e[var] += delta;
  return Term(coeff_, std::move(e));
}

Term Term::derivative(std::size_t var) const {
  const unsigned e = exponent(var);
  if (e == 0) return Term(0.0, {});
  std::vector<unsigned> d = exps_;
  d[var] -= 1;
  return Term(coeff_ * static_cast<double>(e), std::move(d));
}

void Term::resize(std::size_t n) {
  if (exps_.size() < n) exps_.resize(n, 0U);
}

std::string Term::to_string(std::span<const std::string> names) const {
  std::ostringstream out;
  if (coeff_ >= 0) out << '+';
  out << coeff_;
  for (std::size_t v = 0; v < exps_.size(); ++v) {
    if (exps_[v] == 0) continue;
    out << '*' << (v < names.size() ? names[v] : ("v" + std::to_string(v)));
    if (exps_[v] > 1) out << '^' << exps_[v];
  }
  return out.str();
}

Term make_term(double coefficient,
               std::initializer_list<std::pair<std::size_t, unsigned>> powers) {
  std::size_t max_var = 0;
  for (const auto& [var, exp] : powers) max_var = std::max(max_var, var + 1);
  std::vector<unsigned> exps(max_var, 0U);
  for (const auto& [var, exp] : powers) exps[var] += exp;
  return Term(coefficient, std::move(exps));
}

}  // namespace deproto::ode
