#pragma once

// Section 2 of the paper: the taxonomy of differential equation systems.
//
//   complete                 -- sum of all right-hand sides is identically 0
//   completely partitionable -- complete, and all terms pair up as {+T, -T}
//   polynomial               -- every rhs is a sum of +/- c * prod y^i terms
//                               (guaranteed by our representation)
//   restricted polynomial    -- polynomial, and every negative term in f_x
//                               has i_x >= 1
//
// `classify` also produces the partition witness (the explicit {+T, -T}
// pairing), which synthesize() consumes to decide which state gains the
// process that a Flipping/Sampling action moves.

#include <cstddef>
#include <string>
#include <vector>

#include "ode/equation_system.hpp"

namespace deproto::ode {

/// Location of one term inside a system: equations()[equation][term].
struct TermRef {
  std::size_t equation = 0;
  std::size_t term = 0;

  friend bool operator==(const TermRef&, const TermRef&) = default;
};

/// A {+T, -T} pair witnessing complete partitionability. `negative` is the
/// term with c < 0 and `positive` the matching term with coefficient +c.
struct PartitionPair {
  TermRef negative;
  TermRef positive;
};

struct TaxonomyReport {
  bool polynomial = true;  // by construction of EquationSystem
  bool complete = false;
  bool completely_partitionable = false;
  bool restricted_polynomial = false;
  /// Valid iff completely_partitionable.
  std::vector<PartitionPair> partition;
  /// Human-readable explanation of any failed property.
  std::string detail;
};

/// Does Sum_x f_x(X) == 0 symbolically (like terms across equations cancel)?
[[nodiscard]] bool is_complete(const EquationSystem& sys, double tol = 1e-9);

/// Is the system complete with all terms pairable into {+T, -T} pairs?
[[nodiscard]] bool is_completely_partitionable(const EquationSystem& sys,
                                               double tol = 1e-9);

/// Does every negative term -c * prod y^i in f_x satisfy i_x >= 1?
[[nodiscard]] bool is_restricted_polynomial(const EquationSystem& sys);

/// Full classification with the partition witness.
[[nodiscard]] TaxonomyReport classify(const EquationSystem& sys,
                                      double tol = 1e-9);

/// Greedy maximum pairing of {+T, -T} terms. Returns the pairing and the
/// list of unpaired term references. A pairing with no leftovers is exactly
/// the completely-partitionable witness.
struct PartitionResult {
  std::vector<PartitionPair> pairs;
  std::vector<TermRef> unpaired;
};
[[nodiscard]] PartitionResult partition_terms(const EquationSystem& sys,
                                              double tol = 1e-9);

}  // namespace deproto::ode
