#include "ode/rewriting.hpp"

#include <cmath>
#include <stdexcept>

namespace deproto::ode {

EquationSystem complete(const EquationSystem& sys,
                        const std::string& slack_name) {
  if (sys.index_of(slack_name)) {
    throw std::invalid_argument("complete: variable '" + slack_name +
                                "' already exists");
  }
  std::vector<std::string> names = sys.names();
  names.push_back(slack_name);
  EquationSystem out(std::move(names));
  for (std::size_t v = 0; v < sys.num_vars(); ++v) {
    for (const Term& t : sys.rhs(v)) {
      out.add_term(v, t);
      out.add_term(sys.num_vars(), t.negated());  // z-dot = -Sum f_x
    }
  }
  return out;
}

EquationSystem normalize(const EquationSystem& sys, double N) {
  if (!(N > 0) || !std::isfinite(N)) {
    throw std::invalid_argument("normalize: N must be positive and finite");
  }
  EquationSystem out(sys.names());
  for (std::size_t v = 0; v < sys.num_vars(); ++v) {
    for (const Term& t : sys.rhs(v)) {
      const int d = static_cast<int>(t.total_degree());
      out.add_term(v, t.scaled(std::pow(N, d - 1)));
    }
  }
  return out;
}

EquationSystem expand_constants(const EquationSystem& sys) {
  EquationSystem out(sys.names());
  for (std::size_t v = 0; v < sys.num_vars(); ++v) {
    for (const Term& t : sys.rhs(v)) {
      if (!t.is_constant()) {
        out.add_term(v, t);
        continue;
      }
      // +/-c  ->  +/-c * (v_0 + v_1 + ... + v_{m-1})
      for (std::size_t w = 0; w < sys.num_vars(); ++w) {
        std::vector<unsigned> exps(sys.num_vars(), 0U);
        exps[w] = 1;
        out.add_term(v, Term(t.coefficient(), std::move(exps)));
      }
    }
  }
  return out;
}

EquationSystem reduce_order(const HigherOrderEquation& eq, bool add_slack,
                            const std::string& slack_name) {
  if (eq.order < 1) {
    throw std::invalid_argument("reduce_order: order must be >= 1");
  }
  for (const Term& t : eq.rhs) {
    for (std::size_t v = eq.order; v < t.exponents().size(); ++v) {
      if (t.exponents()[v] != 0) {
        throw std::invalid_argument(
            "reduce_order: rhs references derivative of order >= k");
      }
    }
  }

  // Variables: x, x_1, ..., x_{k-1}; ids coincide with derivative order.
  std::vector<std::string> names;
  names.push_back(eq.base_name);
  for (unsigned j = 1; j < eq.order; ++j) {
    names.push_back(eq.base_name + "_" + std::to_string(j));
  }
  EquationSystem out(std::move(names));

  for (unsigned j = 0; j + 1 < eq.order; ++j) {
    std::vector<unsigned> exps(eq.order, 0U);
    exps[j + 1] = 1;
    out.add_term(j, Term(1.0, std::move(exps)));  // d(x_j)/dt = x_{j+1}
  }
  for (const Term& t : eq.rhs) {
    out.add_term(eq.order - 1, t);  // d(x_{k-1})/dt = g(...)
  }

  return add_slack ? complete(out, slack_name) : out;
}

namespace {

/// p * q over `n` variables (plain distributive product).
Polynomial poly_multiply(const Polynomial& p, const Polynomial& q,
                         std::size_t n) {
  Polynomial out;
  for (const Term& a : p) {
    for (const Term& b : q) {
      std::vector<unsigned> exps(n, 0U);
      for (std::size_t v = 0; v < n; ++v) {
        exps[v] = a.exponent(v) + b.exponent(v);
      }
      out.push_back(Term(a.coefficient() * b.coefficient(), std::move(exps)));
    }
  }
  return simplified(out);
}

}  // namespace

EquationSystem eliminate_last(const EquationSystem& sys, double total) {
  const std::size_t m = sys.num_vars();
  if (m < 2) {
    throw std::invalid_argument("eliminate_last: need >= 2 variables");
  }
  const std::size_t last = m - 1;
  const std::size_t n = m - 1;  // variables of the reduced system

  // replacement = total - Sum_{i<m-1} x_i, as a polynomial over n vars.
  Polynomial replacement;
  replacement.push_back(Term(total, std::vector<unsigned>(n, 0U)));
  for (std::size_t v = 0; v < n; ++v) {
    std::vector<unsigned> exps(n, 0U);
    exps[v] = 1;
    replacement.push_back(Term(-1.0, std::move(exps)));
  }

  std::vector<std::string> names(sys.names().begin(),
                                 sys.names().end() - 1);
  EquationSystem out(std::move(names));
  for (std::size_t eq = 0; eq < n; ++eq) {
    Polynomial acc;
    for (const Term& t : sys.rhs(eq)) {
      // Strip the last variable's exponent, then multiply the remainder by
      // replacement^e.
      std::vector<unsigned> exps(n, 0U);
      for (std::size_t v = 0; v < n; ++v) exps[v] = t.exponent(v);
      Polynomial part{Term(t.coefficient(), std::move(exps))};
      for (unsigned k = 0; k < t.exponent(last); ++k) {
        part = poly_multiply(part, replacement, n);
      }
      acc = sum(acc, part);
    }
    for (Term& t : simplified(acc)) out.add_term(eq, std::move(t));
  }
  return out;
}

}  // namespace deproto::ode
