#pragma once

// Spec-level entry point of the static protocol verifier: lint an
// api::ScenarioSpec without launching it. analyze_spec() resolves the
// source system, synthesizes the machine, runs every machine-level pass
// (analysis/machine_checks.hpp), prepends the spec lint rules below, and
// applies the spec's suppressions. deproto-lint, the Experiment pre-flight
// (RuntimeOptions::verify_static), and the registry CTest gate all call
// this one function.
//
// Spec lint catalog:
//   spec.initial-counts          (error)   initial_counts sums != n
//   spec.net-population          (error)   net backend with n beyond the
//                                          one-socket-per-node cap
//   spec.net-probe-timeout       (warning) net backend with a probe
//                                          timeout under one period: in-
//                                          flight probes are declared lost
//                                          before a full period of pacing
//                                          jitter has passed
//   spec.token-ttl               (warning) random-walk token TTL longer
//                                          than the whole run
//   spec.count-anonymous-faults  (warning) count backend with a fault
//                                          plan: victims are anonymous
//                                          count draws, not tracked nodes
//   spec.uncompensated-loss      (info)    runtime message loss with no
//                                          synthesis-side compensation
//
// Failures to resolve or synthesize surface as findings too ("spec.source"
// / "synthesis.failed", both errors) rather than exceptions, so a lint
// sweep over many specs reports every broken one instead of stopping at
// the first.

#include "analysis/exact_checks.hpp"
#include "analysis/machine_checks.hpp"
#include "analysis/report.hpp"
#include "api/spec.hpp"

namespace deproto::analysis {

struct VerifyOptions {
  /// Tolerances and toggles for the machine-level passes. failure_rate
  /// and seeded_states are derived from the spec and overwritten.
  MachineCheckOptions machine;
  /// Honor spec.lint_suppress (deproto-lint --no-suppress sets false).
  bool apply_suppressions = true;
  /// Opt-in exact finite-N pass (deproto-lint --exact, or the
  /// RuntimeOptions::verify_exact pre-flight): build the explicit-state
  /// chain of analysis/exact_chain.hpp at exact_chain.n -- the spec is
  /// rescaled there via ScenarioSpec::scaled_to -- and append the
  /// exact.* findings. The chain models the fault-free count-backend
  /// dynamics; the spec's fault plan is ignored by this pass.
  bool exact = false;
  ExactCheckOptions exact_chain;
};

/// Lint only the spec fields (no synthesis): the spec.* catalog above.
[[nodiscard]] std::vector<Finding> lint_spec(const api::ScenarioSpec& spec);

/// The full static verification of one scenario: spec lint + synthesis +
/// machine checks + suppressions. Never throws on a broken spec; the
/// breakage becomes error findings.
[[nodiscard]] Report analyze_spec(const api::ScenarioSpec& spec,
                                  const VerifyOptions& options = {});

}  // namespace deproto::analysis
