#pragma once

// The structured output of the static protocol verifier (the ninth layer):
// a flat list of findings, each tagged with a severity, a stable rule id
// from the catalog in analysis/machine_checks.hpp / analysis/verifier.hpp,
// and a human-readable location ("state y", "action 2", "network.
// probe_timeout"). Reports serialize through api/json so deproto-lint
// --json, the Experiment pre-flight, and future CEGAR loops all read one
// format.

#include <cstddef>
#include <string>
#include <vector>

#include "api/json.hpp"

namespace deproto::analysis {

enum class Severity {
  Info,     ///< a fact worth surfacing (fixed points, absorbing states)
  Warning,  ///< suspicious but runnable; deproto-lint exits 0 unless --strict
  Error,    ///< the machine or spec is broken; deproto-lint exits nonzero
};

[[nodiscard]] const char* severity_name(Severity severity);
[[nodiscard]] Severity severity_from_name(const std::string& name);

/// One verifier result. `rule` ids are stable API (tests and suppressions
/// key on them); `value` carries the measured quantity where one exists
/// (a mass excess, an ODE residual) so downstream tooling can rank or
/// threshold findings without parsing messages.
struct Finding {
  Severity severity = Severity::Info;
  std::string rule;      // e.g. "mass.action-bias", "reach.unreachable"
  std::string location;  // e.g. "state y", "action 3", "faults.churn"
  std::string message;
  double value = 0.0;  // measured quantity; 0 when the rule has none

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// The verifier's verdict over one machine/spec: every finding that was
/// not suppressed, plus the count of suppressed ones (so a clean report
/// still shows that rules were muted, and a suppression that stops
/// matching anything is visible as suppressed == 0).
struct Report {
  std::string scenario;  // spec name; empty for bare-machine analysis
  std::vector<Finding> findings;
  std::size_t suppressed = 0;

  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::Error); }
  [[nodiscard]] std::size_t warnings() const {
    return count(Severity::Warning);
  }
  /// Clean enough to run: no error-severity findings.
  [[nodiscard]] bool ok() const { return errors() == 0; }

  /// Findings matching `rule` exactly, in report order.
  [[nodiscard]] std::vector<const Finding*> by_rule(
      const std::string& rule) const;

  [[nodiscard]] api::Json to_json() const;
  static Report from_json(const api::Json& j);

  friend bool operator==(const Report&, const Report&) = default;
};

/// One human-readable line per finding ("error  mass.action-bias  action 0:
/// coin bias 1.5 outside [0, 1]"), the rendering deproto-lint prints.
[[nodiscard]] std::string to_string(const Finding& finding);

}  // namespace deproto::analysis
