#pragma once

// Exact finite-N model checking: the count-vector Markov chain of a
// synthesized protocol, built and analyzed without running a single
// period. Where the machine checks (analysis/machine_checks.hpp) reason
// about the mean field -- exact only as N goes to infinity -- ExactChain
// enumerates the full lattice of population counts over the machine's
// states (C(N+S-1, S-1) points) and constructs the exact one-period
// transition kernel of sim::CountSimulator's fault-free dynamics: the
// same core::transition_channels probabilities, the same sequential
// binomial stop-after-first-firing chains, the same Jacobi token/push
// settlement, convolved symbolically instead of sampled. Everything the
// simulators can only estimate is then a linear-algebra question on a
// sparse row-stochastic matrix:
//
//   * communicating classes (Tarjan SCC): exact recurrent / transient /
//     absorbing classification, upgrading the reach.* occupancy fixpoint
//     from "can mass ever get there" to "where does probability end up";
//   * absorption probabilities and expected hitting times from the seeded
//     start (sparse Gauss-Seidel solves of (I - Q) u = b, no new deps);
//   * the stationary distribution of an ergodic chain, whose mean and
//     per-state count variance are compared against the mean-field fixed
//     point and the CLT prediction of core/fluctuations.* by the exact.*
//     rule family (analysis/exact_checks.hpp).
//
// Budgets: `max_states` caps the lattice; `max_row_branches` caps the
// outcome enumeration of a single kernel row (multi-action states branch
// per binomial support). Exceeding either throws ExactChainBudgetError,
// which the checks layer reports as an exact.state-budget finding instead
// of an answer -- the exact tier is for small N by design, the mean-field
// tier covers the rest.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/state_machine.hpp"
#include "numerics/vector.hpp"
#include "sim/runtime.hpp"

namespace deproto::analysis {

struct ExactChainOptions {
  /// Population size N (fixed: the exact chain is the fault-free regime,
  /// alive == N every period).
  std::size_t n = 32;
  /// Largest admissible count-vector lattice, C(n + S - 1, S - 1).
  std::size_t max_states = 20000;
  /// Largest outcome expansion while convolving one kernel row.
  std::size_t max_row_branches = 4000000;
  /// Per-connection-attempt failure probability f (RuntimeOptions).
  double message_loss = 0.0;
  /// Token routing mode/TTL, mirroring sim::CountSimOptions.
  sim::TokenRouting tokens;
};

/// The state space or a kernel row outgrew its budget; the chain cannot
/// be built at this (n, machine) within the configured limits.
class ExactChainBudgetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One communicating class of the chain (a strongly connected component
/// of the kernel's support digraph). `recurrent` means closed: no
/// transition leaves the class, so it traps probability forever.
struct CommunicatingClass {
  std::vector<std::size_t> members;  ///< chain-state indices, ascending
  bool recurrent = false;            ///< closed under the kernel
  bool absorbing = false;            ///< singleton with self-probability 1
};

class ExactChain {
 public:
  /// Enumerate the lattice and build the exact kernel. Throws
  /// ExactChainBudgetError when a budget is exceeded and
  /// std::invalid_argument on malformed options (n == 0, stateless
  /// machine, message_loss outside [0, 1]).
  ExactChain(const core::ProtocolStateMachine& machine,
             ExactChainOptions options);

  /// C(n + s - 1, s - 1): the lattice size before any budget is applied.
  /// Saturates at SIZE_MAX on overflow, so callers can compare against a
  /// budget without tripping UB.
  [[nodiscard]] static std::size_t state_space_size(std::size_t num_states,
                                                    std::size_t n);

  [[nodiscard]] const ExactChainOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::size_t num_chain_states() const noexcept {
    return states_.size();
  }
  /// Count vector of chain state `i` (one entry per machine state,
  /// summing to n). States are in lexicographic enumeration order.
  [[nodiscard]] const std::vector<std::size_t>& state(std::size_t i) const {
    return states_.at(i);
  }
  /// Chain-state index of a count vector (entries beyond the machine's
  /// states must be absent); nullopt when the counts do not sum to n.
  [[nodiscard]] std::optional<std::size_t> index_of(
      const std::vector<std::size_t>& counts) const;
  /// The seeded start the api layer uses: counts[s] processes in state s,
  /// the unseeded remainder in state 0 (sim::Simulator::seed_states).
  /// Throws std::invalid_argument when the counts exceed n.
  [[nodiscard]] std::size_t seeded_index(
      const std::vector<std::size_t>& counts) const;

  /// One kernel row, sparse: (column, probability) with probabilities
  /// summing to 1 (the row-stochastic invariant the tests pin).
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, double>>& row(
      std::size_t i) const {
    return rows_.at(i);
  }

  /// Communicating classes in deterministic order (ascending smallest
  /// member), and the class index of each chain state.
  [[nodiscard]] const std::vector<CommunicatingClass>& classes()
      const noexcept {
    return classes_;
  }
  [[nodiscard]] std::size_t class_of(std::size_t state_index) const {
    return class_of_.at(state_index);
  }
  /// Indices into classes() of the recurrent ones, in classes() order.
  [[nodiscard]] std::vector<std::size_t> recurrent_classes() const;

  /// P(absorbed into classes()[k] | start), one entry per class index k
  /// (zero for transient classes). A recurrent start absorbs into its own
  /// class with probability 1. Sparse Gauss-Seidel on the transient
  /// block; rows sum to 1 up to the solver tolerance.
  [[nodiscard]] std::vector<double> absorption_probabilities(
      std::size_t start) const;

  /// Expected periods until the chain first enters any recurrent class,
  /// from `start` (0 when the start is already recurrent).
  [[nodiscard]] double expected_absorption_time(std::size_t start) const;

  /// Stationary distribution over all chain states, supported on the
  /// unique recurrent class. Throws std::logic_error when the chain has
  /// more than one recurrent class (no unique stationary distribution --
  /// use absorption_probabilities instead).
  [[nodiscard]] std::vector<double> stationary_distribution() const;

  /// E[c_s] / n per machine state under a distribution over chain states.
  [[nodiscard]] num::Vec mean_fractions(
      const std::vector<double>& dist) const;
  /// Per-machine-state standard deviation of the population *count* under
  /// a distribution over chain states.
  [[nodiscard]] num::Vec count_stddev(const std::vector<double>& dist) const;

 private:
  void enumerate_states();
  void build_kernel(const core::ProtocolStateMachine& machine);
  void build_row(const core::ProtocolStateMachine& machine, std::size_t row);
  void compute_classes();

  ExactChainOptions options_;
  std::size_t num_machine_states_ = 0;
  std::vector<std::vector<std::size_t>> states_;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows_;
  std::vector<CommunicatingClass> classes_;
  std::vector<std::size_t> class_of_;
};

}  // namespace deproto::analysis
