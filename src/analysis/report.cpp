#include "analysis/report.hpp"

#include <utility>

namespace deproto::analysis {

using api::Json;

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::Info:
      return "info";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "info";  // unreachable
}

Severity severity_from_name(const std::string& name) {
  if (name == "info") return Severity::Info;
  if (name == "warning") return Severity::Warning;
  if (name == "error") return Severity::Error;
  throw api::JsonError("unknown finding severity: " + name);
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.severity == severity) ++n;
  }
  return n;
}

std::vector<const Finding*> Report::by_rule(const std::string& rule) const {
  std::vector<const Finding*> matched;
  for (const Finding& f : findings) {
    if (f.rule == rule) matched.push_back(&f);
  }
  return matched;
}

Json Report::to_json() const {
  Json j = Json::object();
  if (!scenario.empty()) j.set("scenario", Json::string(scenario));
  j.set("ok", Json::boolean(ok()));
  j.set("errors", Json::number(errors()));
  j.set("warnings", Json::number(warnings()));
  j.set("suppressed", Json::number(suppressed));
  Json arr = Json::array();
  for (const Finding& f : findings) {
    Json item = Json::object()
                    .set("severity", Json::string(severity_name(f.severity)))
                    .set("rule", Json::string(f.rule))
                    .set("location", Json::string(f.location))
                    .set("message", Json::string(f.message));
    if (f.value != 0.0) item.set("value", Json::number(f.value));
    arr.push(std::move(item));
  }
  j.set("findings", std::move(arr));
  return j;
}

Report Report::from_json(const Json& j) {
  Report report;
  report.scenario = j.get_or("scenario", report.scenario);
  report.suppressed = j.contains("suppressed")
                          ? j.at("suppressed").as_size()
                          : report.suppressed;
  if (j.contains("findings")) {
    for (const Json& e : j.at("findings").elements()) {
      Finding f;
      f.severity = severity_from_name(e.at("severity").as_string());
      f.rule = e.at("rule").as_string();
      f.location = e.get_or("location", f.location);
      f.message = e.get_or("message", f.message);
      f.value = e.get_or("value", f.value);
      report.findings.push_back(std::move(f));
    }
  }
  return report;
}

std::string to_string(const Finding& finding) {
  std::string line = severity_name(finding.severity);
  line += "  ";
  line += finding.rule;
  if (!finding.location.empty()) {
    line += "  ";
    line += finding.location;
  }
  line += ": ";
  line += finding.message;
  return line;
}

}  // namespace deproto::analysis
