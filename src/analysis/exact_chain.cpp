#include "analysis/exact_chain.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/action.hpp"
#include "core/transition_model.hpp"

namespace deproto::analysis {

namespace {

// The kernel construction below is a symbolic replay of
// sim::CountSimulator::execute_period (fault-free, alive == n): every
// Rng::binomial draw becomes a branch over the full pmf support, every
// deterministic step stays deterministic, and the branch order matches
// the simulator's batch order exactly -- token settlements before push
// settlements, both in (state, action-position) order -- because the
// `stayers` clamp makes the order observable.

/// Binomial pmf over 0..n with the same degenerate clamps as
/// Rng::binomial: p <= 0 puts all mass at 0, p >= 1 all mass at n.
/// Computed in log space (protects q^n from underflow at p near 1) and
/// normalized, so the returned masses sum to 1 to machine precision.
std::vector<double> binomial_pmf(std::size_t n, double p,
                                 const std::vector<double>& log_fact) {
  std::vector<double> pmf(n + 1, 0.0);
  if (n == 0 || p <= 0.0) {
    pmf[0] = 1.0;
    return pmf;
  }
  if (p >= 1.0) {
    pmf[n] = 1.0;
    return pmf;
  }
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double total = 0.0;
  for (std::size_t k = 0; k <= n; ++k) {
    const double log_mass = log_fact[n] - log_fact[k] - log_fact[n - k] +
                            static_cast<double>(k) * log_p +
                            static_cast<double>(n - k) * log_q;
    pmf[k] = std::exp(log_mass);
    total += pmf[k];
  }
  for (double& mass : pmf) mass /= total;
  return pmf;
}

struct TokenBatch {
  std::size_t token_state;
  std::size_t to_state;
  std::size_t generated;
};

struct PushBatch {
  std::size_t target_state;
  std::size_t to_state;
  double coin_bias;
  std::uint64_t contacts;
};

/// One kernel row under construction: the shared inputs plus the mutable
/// branch counter checked against the per-row budget.
struct RowBuilder {
  const core::ProtocolStateMachine& machine;
  const ExactChainOptions& options;
  const std::vector<double>& log_fact;
  const std::vector<std::size_t>& start;
  const std::vector<core::TransitionChannel>& channels;
  std::vector<std::pair<std::vector<std::size_t>, double>>& sink;
  std::size_t branches = 0;

  void charge(std::size_t cost) {
    branches += cost;
    if (branches > options.max_row_branches) {
      throw ExactChainBudgetError(
          "ExactChain: kernel row outcome expansion exceeds max_row_branches "
          "(" +
          std::to_string(options.max_row_branches) + ")");
    }
  }

  /// Phase A/B: walk machine states in order, branching over each
  /// stop-after-first-firing action chain.
  void expand_state(std::size_t s, std::vector<std::size_t> moved_out,
                    std::vector<std::size_t> moved_in,
                    std::vector<TokenBatch> tokens,
                    std::vector<PushBatch> pushes, double prob) {
    const std::size_t m = machine.num_states();
    if (s == m) {
      std::vector<std::size_t> stayers(m);
      for (std::size_t i = 0; i < m; ++i) {
        stayers[i] = start[i] - moved_out[i];
      }
      settle_tokens(0, tokens, pushes, std::move(stayers),
                    std::move(moved_out), std::move(moved_in), prob);
      return;
    }
    if (start[s] == 0) {
      expand_state(s + 1, std::move(moved_out), std::move(moved_in),
                   std::move(tokens), std::move(pushes), prob);
      return;
    }
    expand_actions(s, 0, start[s], std::move(moved_out), std::move(moved_in),
                   std::move(tokens), std::move(pushes), prob);
  }

  void expand_actions(std::size_t s, std::size_t pos, std::size_t remaining,
                      std::vector<std::size_t> moved_out,
                      std::vector<std::size_t> moved_in,
                      std::vector<TokenBatch> tokens,
                      std::vector<PushBatch> pushes, double prob) {
    const std::vector<std::size_t>& order = machine.actions_of(s);
    if (pos == order.size() || remaining == 0) {
      expand_state(s + 1, std::move(moved_out), std::move(moved_in),
                   std::move(tokens), std::move(pushes), prob);
      return;
    }
    const std::size_t idx = order[pos];
    const core::TransitionChannel& ch = channels[idx];
    const core::Action& action = machine.actions()[idx];

    if (ch.moves_executor) {
      const std::vector<double> pmf =
          binomial_pmf(remaining, ch.fire_prob, log_fact);
      charge(pmf.size());
      for (std::size_t fired = 0; fired <= remaining; ++fired) {
        if (pmf[fired] == 0.0) continue;
        std::vector<std::size_t> out = moved_out;
        std::vector<std::size_t> in = moved_in;
        out[s] += fired;
        in[ch.to] += fired;
        expand_actions(s, pos + 1, remaining - fired, std::move(out),
                       std::move(in), tokens, pushes, prob * pmf[fired]);
      }
      return;
    }
    if (std::holds_alternative<core::TokenizingAction>(action)) {
      const std::vector<double> pmf =
          binomial_pmf(remaining, ch.fire_prob, log_fact);
      charge(pmf.size());
      for (std::size_t generated = 0; generated <= remaining; ++generated) {
        if (pmf[generated] == 0.0) continue;
        std::vector<TokenBatch> next = tokens;
        if (generated > 0) {
          next.push_back(TokenBatch{ch.from, ch.to, generated});
        }
        expand_actions(s, pos + 1, remaining, moved_out, moved_in,
                       std::move(next), pushes, prob * pmf[generated]);
      }
      return;
    }
    // Push: the contact count is deterministic given the executors still
    // in the chain; only the later conversion draw branches.
    const auto& push = std::get<core::PushAction>(action);
    const std::uint64_t contacts =
        static_cast<std::uint64_t>(remaining) * push.fanout;
    if (contacts > 0) {
      pushes.push_back(PushBatch{push.target_state, push.to_state,
                                 push.coin_bias, contacts});
    }
    expand_actions(s, pos + 1, remaining, std::move(moved_out),
                   std::move(moved_in), std::move(tokens), std::move(pushes),
                   prob);
  }

  /// Phase C, first half: token delivery in batch order. Directory mode
  /// is deterministic; TTL mode branches over the delivery binomial with
  /// the clamped tail aggregated (min(draw, stayers) merges every draw
  /// beyond the available stayers into one outcome).
  void settle_tokens(std::size_t b, const std::vector<TokenBatch>& tokens,
                     const std::vector<PushBatch>& pushes,
                     std::vector<std::size_t> stayers,
                     std::vector<std::size_t> moved_out,
                     std::vector<std::size_t> moved_in, double prob) {
    if (b == tokens.size()) {
      settle_pushes(0, pushes, std::move(stayers), std::move(moved_out),
                    std::move(moved_in), prob);
      return;
    }
    const TokenBatch& batch = tokens[b];
    if (options.tokens.mode == sim::TokenRouting::Mode::Directory) {
      const std::size_t delivered =
          std::min(batch.generated, stayers[batch.token_state]);
      stayers[batch.token_state] -= delivered;
      moved_out[batch.token_state] += delivered;
      moved_in[batch.to_state] += delivered;
      settle_tokens(b + 1, tokens, pushes, std::move(stayers),
                    std::move(moved_out), std::move(moved_in), prob);
      return;
    }
    const double f = options.message_loss;
    const double q = options.n > 0
                         ? static_cast<double>(start[batch.token_state]) /
                               static_cast<double>(options.n)
                         : 0.0;
    double p_deliver = 0.0;
    double surviving = 1.0;
    for (unsigned hop = 0; hop < options.tokens.ttl; ++hop) {
      p_deliver += surviving * (1.0 - f) * q;
      surviving *= (1.0 - f) * (1.0 - q);
    }
    const std::vector<double> pmf =
        binomial_pmf(batch.generated, p_deliver, log_fact);
    charge(pmf.size());
    const std::size_t cap =
        std::min(batch.generated, stayers[batch.token_state]);
    for (std::size_t delivered = 0; delivered <= cap; ++delivered) {
      double mass = pmf[delivered];
      if (delivered == cap) {
        for (std::size_t d = cap + 1; d <= batch.generated; ++d) {
          mass += pmf[d];
        }
      }
      if (mass == 0.0) continue;
      std::vector<std::size_t> st = stayers;
      std::vector<std::size_t> out = moved_out;
      std::vector<std::size_t> in = moved_in;
      st[batch.token_state] -= delivered;
      out[batch.token_state] += delivered;
      in[batch.to_state] += delivered;
      settle_tokens(b + 1, tokens, pushes, std::move(st), std::move(out),
                    std::move(in), prob * mass);
    }
  }

  /// Phase C, second half: push conversions in batch order, then the
  /// finished count vector lands in the row sink.
  void settle_pushes(std::size_t b, const std::vector<PushBatch>& pushes,
                     std::vector<std::size_t> stayers,
                     std::vector<std::size_t> moved_out,
                     std::vector<std::size_t> moved_in, double prob) {
    // The simulator skips every push batch when n < 2.
    if (b == pushes.size() || options.n < 2) {
      const std::size_t m = machine.num_states();
      std::vector<std::size_t> counts(m);
      for (std::size_t i = 0; i < m; ++i) {
        counts[i] = start[i] - moved_out[i] + moved_in[i];
      }
      charge(1);
      sink.emplace_back(std::move(counts), prob);
      return;
    }
    const PushBatch& batch = pushes[b];
    const std::size_t candidates = stayers[batch.target_state];
    if (candidates == 0) {
      settle_pushes(b + 1, pushes, std::move(stayers), std::move(moved_out),
                    std::move(moved_in), prob);
      return;
    }
    const double per_contact = (1.0 - options.message_loss) *
                               batch.coin_bias /
                               static_cast<double>(options.n - 1);
    const double p_converted =
        1.0 -
        std::pow(1.0 - per_contact, static_cast<double>(batch.contacts));
    const std::vector<double> pmf =
        binomial_pmf(candidates, p_converted, log_fact);
    charge(pmf.size());
    for (std::size_t converted = 0; converted <= candidates; ++converted) {
      if (pmf[converted] == 0.0) continue;
      std::vector<std::size_t> st = stayers;
      std::vector<std::size_t> out = moved_out;
      std::vector<std::size_t> in = moved_in;
      st[batch.target_state] -= converted;
      out[batch.target_state] += converted;
      in[batch.to_state] += converted;
      settle_pushes(b + 1, pushes, std::move(st), std::move(out),
                    std::move(in), prob * pmf[converted]);
    }
  }
};

}  // namespace

std::size_t ExactChain::state_space_size(std::size_t num_states,
                                         std::size_t n) {
  if (num_states == 0) return 0;
  // C(n + k, k) built by the exact integer recurrence r <- r*(n+k)/k,
  // saturating instead of overflowing.
  std::size_t result = 1;
  for (std::size_t k = 1; k + 1 <= num_states; ++k) {
    if (result > std::numeric_limits<std::size_t>::max() / (n + k)) {
      return std::numeric_limits<std::size_t>::max();
    }
    result = result * (n + k) / k;
  }
  return result;
}

ExactChain::ExactChain(const core::ProtocolStateMachine& machine,
                       ExactChainOptions options)
    : options_(options), num_machine_states_(machine.num_states()) {
  if (options_.n == 0) {
    throw std::invalid_argument("ExactChain: n == 0");
  }
  if (num_machine_states_ == 0) {
    throw std::invalid_argument("ExactChain: machine has no states");
  }
  if (!(options_.message_loss >= 0.0 && options_.message_loss <= 1.0)) {
    throw std::invalid_argument("ExactChain: bad message_loss");
  }
  const std::size_t lattice =
      state_space_size(num_machine_states_, options_.n);
  if (lattice > options_.max_states) {
    throw ExactChainBudgetError(
        "ExactChain: count-vector lattice has " + std::to_string(lattice) +
        " states, exceeding max_states (" +
        std::to_string(options_.max_states) + ")");
  }
  enumerate_states();
  build_kernel(machine);
  compute_classes();
}

void ExactChain::enumerate_states() {
  // Lexicographic enumeration keeps states_ sorted, so index_of is a
  // binary search with no side table.
  std::vector<std::size_t> counts(num_machine_states_, 0);
  const auto fill = [&](auto&& self, std::size_t level,
                        std::size_t used) -> void {
    if (level + 1 == num_machine_states_) {
      counts[level] = options_.n - used;
      states_.push_back(counts);
      counts[level] = 0;
      return;
    }
    for (std::size_t c = 0; c + used <= options_.n; ++c) {
      counts[level] = c;
      self(self, level + 1, used + c);
    }
    counts[level] = 0;
  };
  states_.reserve(state_space_size(num_machine_states_, options_.n));
  fill(fill, 0, 0);
}

std::optional<std::size_t> ExactChain::index_of(
    const std::vector<std::size_t>& counts) const {
  if (counts.size() != num_machine_states_) return std::nullopt;
  const auto it = std::lower_bound(states_.begin(), states_.end(), counts);
  if (it == states_.end() || *it != counts) return std::nullopt;
  return static_cast<std::size_t>(it - states_.begin());
}

std::size_t ExactChain::seeded_index(
    const std::vector<std::size_t>& counts) const {
  if (counts.size() > num_machine_states_) {
    throw std::invalid_argument("ExactChain::seeded_index: too many states");
  }
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  if (total > options_.n) {
    throw std::invalid_argument(
        "ExactChain::seeded_index: counts exceed population");
  }
  std::vector<std::size_t> full(num_machine_states_, 0);
  for (std::size_t s = 0; s < counts.size(); ++s) full[s] = counts[s];
  full[0] += options_.n - total;
  return *index_of(full);
}

void ExactChain::build_kernel(const core::ProtocolStateMachine& machine) {
  std::vector<double> log_fact(options_.n + 1, 0.0);
  for (std::size_t k = 2; k <= options_.n; ++k) {
    log_fact[k] = log_fact[k - 1] + std::log(static_cast<double>(k));
  }
  rows_.resize(states_.size());
  std::vector<std::pair<std::vector<std::size_t>, double>> sink;
  for (std::size_t r = 0; r < states_.size(); ++r) {
    const std::vector<std::size_t>& start = states_[r];
    num::Vec hit(num_machine_states_, 0.0);
    if (options_.n >= 2) {
      const double denom = static_cast<double>(options_.n - 1);
      for (std::size_t s = 0; s < num_machine_states_; ++s) {
        hit[s] = static_cast<double>(start[s]) / denom;
      }
    }
    const std::vector<core::TransitionChannel> channels =
        core::transition_channels(machine, hit, options_.message_loss);

    sink.clear();
    RowBuilder builder{machine, options_, log_fact, start, channels, sink};
    builder.expand_state(0, std::vector<std::size_t>(num_machine_states_, 0),
                         std::vector<std::size_t>(num_machine_states_, 0),
                         {}, {}, 1.0);

    // Fold duplicate outcomes and store the row sparse and sorted.
    std::vector<std::pair<std::uint32_t, double>>& row = rows_[r];
    row.clear();
    for (auto& [counts, prob] : sink) {
      const std::optional<std::size_t> col = index_of(counts);
      row.emplace_back(static_cast<std::uint32_t>(*col), prob);
    }
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t write = 0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (write > 0 && row[write - 1].first == row[i].first) {
        row[write - 1].second += row[i].second;
      } else {
        row[write++] = row[i];
      }
    }
    row.resize(write);
  }
}

void ExactChain::compute_classes() {
  // Iterative Tarjan over the kernel's support digraph.
  const std::size_t m = states_.size();
  constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> index(m, kUnset);
  std::vector<std::size_t> lowlink(m, 0);
  std::vector<bool> on_stack(m, false);
  std::vector<std::size_t> stack;
  std::vector<std::size_t> scc_of(m, kUnset);
  std::size_t next_index = 0;
  std::size_t num_sccs = 0;

  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  std::vector<Frame> frames;
  for (std::size_t root = 0; root < m; ++root) {
    if (index[root] != kUnset) continue;
    frames.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const std::size_t v = fr.v;
      if (fr.edge < rows_[v].size()) {
        const std::size_t w = rows_[v][fr.edge].first;
        ++fr.edge;
        if (index[w] == kUnset) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc_of[w] = num_sccs;
          if (w == v) break;
        }
        ++num_sccs;
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }

  std::vector<CommunicatingClass> raw(num_sccs);
  std::vector<bool> closed(num_sccs, true);
  for (std::size_t v = 0; v < m; ++v) {
    raw[scc_of[v]].members.push_back(v);
    for (const auto& [w, prob] : rows_[v]) {
      (void)prob;
      if (scc_of[w] != scc_of[v]) closed[scc_of[v]] = false;
    }
  }
  for (std::size_t c = 0; c < num_sccs; ++c) {
    std::sort(raw[c].members.begin(), raw[c].members.end());
    raw[c].recurrent = closed[c];
    raw[c].absorbing = closed[c] && raw[c].members.size() == 1;
  }
  std::sort(raw.begin(), raw.end(),
            [](const CommunicatingClass& a, const CommunicatingClass& b) {
              return a.members.front() < b.members.front();
            });
  classes_ = std::move(raw);
  class_of_.assign(m, 0);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    for (const std::size_t v : classes_[c].members) class_of_[v] = c;
  }
}

std::vector<std::size_t> ExactChain::recurrent_classes() const {
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (classes_[c].recurrent) out.push_back(c);
  }
  return out;
}

std::vector<double> ExactChain::absorption_probabilities(
    std::size_t start) const {
  std::vector<double> result(classes_.size(), 0.0);
  if (classes_[class_of_.at(start)].recurrent) {
    result[class_of_[start]] = 1.0;
    return result;
  }
  const std::vector<std::size_t> recurrent = recurrent_classes();

  // Gauss-Seidel on u_k(i) = sum_j P(i,j) [j transient ? u_k(j) : 1{class
  // j == k}] over the transient block, all target classes swept together.
  // (I - Q) is a strictly substochastic M-matrix, so the sweeps converge.
  const std::size_t m = states_.size();
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> slot(m, kNone);
  std::vector<std::size_t> transient;
  for (std::size_t v = 0; v < m; ++v) {
    if (!classes_[class_of_[v]].recurrent) {
      slot[v] = transient.size();
      transient.push_back(v);
    }
  }
  std::vector<std::vector<double>> u(
      transient.size(), std::vector<double>(recurrent.size(), 0.0));
  constexpr std::size_t kMaxSweeps = 200000;
  constexpr double kTol = 1e-12;
  for (std::size_t sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double worst = 0.0;
    for (std::size_t t = 0; t < transient.size(); ++t) {
      const std::size_t v = transient[t];
      double self = 0.0;
      std::vector<double> acc(recurrent.size(), 0.0);
      for (const auto& [w, prob] : rows_[v]) {
        if (w == v) {
          self = prob;
          continue;
        }
        if (slot[w] != kNone) {
          const std::vector<double>& uw = u[slot[w]];
          for (std::size_t k = 0; k < recurrent.size(); ++k) {
            acc[k] += prob * uw[k];
          }
        } else {
          for (std::size_t k = 0; k < recurrent.size(); ++k) {
            if (class_of_[w] == recurrent[k]) acc[k] += prob;
          }
        }
      }
      for (std::size_t k = 0; k < recurrent.size(); ++k) {
        const double next = acc[k] / (1.0 - self);
        worst = std::max(worst, std::abs(next - u[t][k]));
        u[t][k] = next;
      }
    }
    if (worst < kTol) break;
  }
  const std::vector<double>& us = u[slot[start]];
  for (std::size_t k = 0; k < recurrent.size(); ++k) {
    result[recurrent[k]] = us[k];
  }
  return result;
}

double ExactChain::expected_absorption_time(std::size_t start) const {
  if (classes_[class_of_.at(start)].recurrent) return 0.0;
  const std::size_t m = states_.size();
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> slot(m, kNone);
  std::vector<std::size_t> transient;
  for (std::size_t v = 0; v < m; ++v) {
    if (!classes_[class_of_[v]].recurrent) {
      slot[v] = transient.size();
      transient.push_back(v);
    }
  }
  // Gauss-Seidel on t(i) = 1 + sum_{j transient} P(i,j) t(j).
  std::vector<double> t(transient.size(), 0.0);
  constexpr std::size_t kMaxSweeps = 200000;
  constexpr double kTol = 1e-10;
  for (std::size_t sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double worst = 0.0;
    for (std::size_t i = 0; i < transient.size(); ++i) {
      const std::size_t v = transient[i];
      double self = 0.0;
      double acc = 1.0;
      for (const auto& [w, prob] : rows_[v]) {
        if (w == v) {
          self = prob;
        } else if (slot[w] != kNone) {
          acc += prob * t[slot[w]];
        }
      }
      const double next = acc / (1.0 - self);
      worst = std::max(worst, std::abs(next - t[i]));
      t[i] = next;
    }
    if (worst < kTol) break;
  }
  return t[slot[start]];
}

std::vector<double> ExactChain::stationary_distribution() const {
  const std::vector<std::size_t> recurrent = recurrent_classes();
  if (recurrent.size() != 1) {
    throw std::logic_error(
        "ExactChain::stationary_distribution: chain has " +
        std::to_string(recurrent.size()) +
        " recurrent classes; the stationary distribution is not unique");
  }
  const std::vector<std::size_t>& members = classes_[recurrent[0]].members;
  const std::size_t m = states_.size();
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> slot(m, kNone);
  for (std::size_t i = 0; i < members.size(); ++i) slot[members[i]] = i;

  // Damped power iteration pi <- (pi + pi P) / 2: the averaging kills any
  // periodicity (deterministic coin_bias == 1 cycles are legal machines)
  // while preserving the fixed point.
  std::vector<double> pi(members.size(),
                         1.0 / static_cast<double>(members.size()));
  std::vector<double> next(members.size(), 0.0);
  constexpr std::size_t kMaxIters = 500000;
  constexpr double kTol = 1e-13;
  for (std::size_t iter = 0; iter < kMaxIters; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const double mass = pi[i];
      if (mass == 0.0) continue;
      for (const auto& [w, prob] : rows_[members[i]]) {
        next[slot[w]] += mass * prob;
      }
    }
    double delta = 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < members.size(); ++i) {
      next[i] = 0.5 * (next[i] + pi[i]);
      total += next[i];
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      next[i] /= total;
      delta += std::abs(next[i] - pi[i]);
    }
    pi.swap(next);
    if (delta < kTol) break;
  }
  std::vector<double> dist(m, 0.0);
  for (std::size_t i = 0; i < members.size(); ++i) dist[members[i]] = pi[i];
  return dist;
}

num::Vec ExactChain::mean_fractions(const std::vector<double>& dist) const {
  num::Vec mean(num_machine_states_, 0.0);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (dist[i] == 0.0) continue;
    for (std::size_t s = 0; s < num_machine_states_; ++s) {
      mean[s] += dist[i] * static_cast<double>(states_[i][s]);
    }
  }
  for (std::size_t s = 0; s < num_machine_states_; ++s) {
    mean[s] /= static_cast<double>(options_.n);
  }
  return mean;
}

num::Vec ExactChain::count_stddev(const std::vector<double>& dist) const {
  num::Vec mean(num_machine_states_, 0.0);
  num::Vec second(num_machine_states_, 0.0);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (dist[i] == 0.0) continue;
    for (std::size_t s = 0; s < num_machine_states_; ++s) {
      const auto c = static_cast<double>(states_[i][s]);
      mean[s] += dist[i] * c;
      second[s] += dist[i] * c * c;
    }
  }
  num::Vec stddev(num_machine_states_, 0.0);
  for (std::size_t s = 0; s < num_machine_states_; ++s) {
    stddev[s] = std::sqrt(std::max(0.0, second[s] - mean[s] * mean[s]));
  }
  return stddev;
}

}  // namespace deproto::analysis
