#include "analysis/verifier.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/synthesis.hpp"
#include "net/net_sim.hpp"

namespace deproto::analysis {

std::vector<Finding> lint_spec(const api::ScenarioSpec& spec) {
  std::vector<Finding> findings;

  if (!spec.initial_counts.empty()) {
    std::size_t total = 0;
    for (const std::size_t c : spec.initial_counts) total += c;
    if (total != spec.n) {
      findings.push_back(
          {Severity::Error, "spec.initial-counts", "initial_counts",
           "initial_counts sums to " + std::to_string(total) +
               " but n = " + std::to_string(spec.n),
           static_cast<double>(total)});
    }
  }

  const api::Backend backend = api::resolve_backend(spec.backend, spec.n);
  if (backend == api::Backend::Net) {
    if (spec.n > net::NetSimulator::kMaxNodes) {
      findings.push_back(
          {Severity::Error, "spec.net-population", "n",
           "net backend opens one UDP socket per node and is capped at " +
               std::to_string(net::NetSimulator::kMaxNodes) + " nodes, got " +
               std::to_string(spec.n),
           static_cast<double>(spec.n)});
    }
    if (spec.network.probe_timeout < 1.0) {
      findings.push_back(
          {Severity::Warning, "spec.net-probe-timeout",
           "network.probe_timeout",
           "probe timeout " + std::to_string(spec.network.probe_timeout) +
               " periods is under one period: pacing jitter alone will be "
               "declared message loss",
           spec.network.probe_timeout});
    }
  }

  if (spec.runtime.tokens.mode == sim::TokenRouting::Mode::RandomWalkTtl &&
      spec.runtime.tokens.ttl > spec.periods) {
    findings.push_back(
        {Severity::Warning, "spec.token-ttl", "runtime.token_ttl",
         "random-walk token TTL " + std::to_string(spec.runtime.tokens.ttl) +
             " exceeds the whole run of " + std::to_string(spec.periods) +
             " periods: tokens effectively never expire",
         static_cast<double>(spec.runtime.tokens.ttl)});
  }

  if (backend == api::Backend::Count && spec.faults.any()) {
    findings.push_back(
        {Severity::Warning, "spec.count-anonymous-faults", "faults",
         "count backend applies faults to anonymous count draws, not "
         "tracked nodes: per-node fault effects (host history, repeat "
         "victims) are approximated",
         0.0});
  }

  if (spec.runtime.message_loss > 0.0 && spec.synthesis.failure_rate == 0.0) {
    findings.push_back(
        {Severity::Info, "spec.uncompensated-loss", "runtime.message_loss",
         "runtime injects message loss " +
             std::to_string(spec.runtime.message_loss) +
             " but synthesis compensates for failure rate 0: the realized "
             "dynamics run slower than the source system",
         spec.runtime.message_loss});
  }

  return findings;
}

Report analyze_spec(const api::ScenarioSpec& spec,
                    const VerifyOptions& options) {
  Report report;
  report.scenario = spec.name;
  report.findings = lint_spec(spec);

  // Resolve + synthesize; breakage becomes error findings so a sweep over
  // many specs reports every broken one instead of throwing on the first.
  std::optional<core::SynthesisResult> synthesis;
  try {
    const ode::EquationSystem source = spec.resolve_source();
    try {
      synthesis.emplace(core::synthesize(source, spec.synthesis));
    } catch (const std::exception& e) {
      report.findings.push_back({Severity::Error, "synthesis.failed",
                                 "synthesis",
                                 std::string("synthesis failed: ") + e.what(),
                                 0.0});
    }
  } catch (const std::exception& e) {
    report.findings.push_back(
        {Severity::Error, "spec.source", "source",
         std::string("source system cannot be resolved: ") + e.what(), 0.0});
  }

  if (synthesis.has_value()) {
    MachineCheckOptions machine_options = options.machine;
    machine_options.failure_rate = spec.synthesis.failure_rate;
    machine_options.seeded_states.clear();
    // Explicit seeding pins the reachability analysis; an empty
    // initial_counts means an even spread over every state, which the
    // machine checks' empty default already models.
    for (std::size_t s = 0; s < spec.initial_counts.size(); ++s) {
      if (spec.initial_counts[s] > 0) {
        machine_options.seeded_states.push_back(s);
      }
    }
    std::vector<Finding> more = analyze_machine(
        synthesis->machine, synthesis->source, machine_options);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(more.begin()),
                           std::make_move_iterator(more.end()));

    if (options.exact) {
      // The exact pass runs at its own population size: rescale the
      // spec's seeding there (proportions preserved, seeded states stay
      // populated) and hand the machine over with the runtime's loss and
      // token routing. Fault plans are out of scope for the exact chain.
      const api::ScenarioSpec scaled = spec.scaled_to(options.exact_chain.n);
      more = check_exact(synthesis->machine, scaled.initial_counts,
                         options.exact_chain, spec.runtime.message_loss,
                         spec.runtime.tokens);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(more.begin()),
                             std::make_move_iterator(more.end()));
    }
  }

  if (options.apply_suppressions && !spec.lint_suppress.empty()) {
    std::vector<Finding> kept;
    kept.reserve(report.findings.size());
    for (Finding& f : report.findings) {
      const bool muted =
          f.severity != Severity::Error &&
          std::find(spec.lint_suppress.begin(), spec.lint_suppress.end(),
                    f.rule) != spec.lint_suppress.end();
      if (muted) {
        ++report.suppressed;
      } else {
        kept.push_back(std::move(f));
      }
    }
    report.findings = std::move(kept);
  }

  return report;
}

}  // namespace deproto::analysis
