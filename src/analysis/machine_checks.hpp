#pragma once

// Machine-level static verification: everything that can be checked about
// a synthesized ProtocolStateMachine without running a single period.
// Four passes over the structural channel view (core::channel_shapes) and
// the re-extracted mean field (core::mean_field):
//
//   mass.*        -- probability-mass conservation. "mass.action-bias"
//                    (error): a coin bias outside [0, 1] moves more mass
//                    per period than the state holds (a mass leak).
//                    "mass.state-budget" (warning): the worst-case leave
//                    probability of one state's action set exceeds 1, so
//                    the runtime's stop-after-first-firing semantics must
//                    diverge from the additive mean field.
//                    "mass.conservation" (error): the expected drift does
//                    not sum to zero over the simplex sample points (mass
//                    appears or vanishes; unreachable for the current
//                    action vocabulary, a guard for future kinds).
//   reach.*       -- reachability from the seeded states over the mass-
//                    movement digraph. "reach.dead-state" (error): no
//                    action can enter the state and it is never seeded.
//                    "reach.unreachable" (warning): enterable in
//                    principle, but not from this seeding. "reach.
//                    absorbing" (info): no action moves mass out.
//                    "reach.absorbing-unreachable" (warning): an absorbing
//                    state the seeded dynamics can never fall into.
//   mean-field.*  -- re-extract the ODE from the machine and compare with
//                    the source system scaled by p. "mean-field.residual"
//                    reports the largest coefficient deviation (info below
//                    tolerance, error above: the machine has drifted from
//                    the equations it claims to implement).
//   fixed-point.* -- equilibria of the re-extracted mean field with their
//                    stability classification ("fixed-point.classified",
//                    info; "fixed-point.none", warning): the static
//                    stability story Theorems 2-3 hang convergence on.
//
// All rule ids are stable API; tests and spec suppressions key on them.

#include <cstddef>
#include <vector>

#include "analysis/report.hpp"
#include "core/state_machine.hpp"
#include "ode/equation_system.hpp"

namespace deproto::analysis {

struct MachineCheckOptions {
  /// Slack on per-action coin-bias range and drift-sum conservation.
  double mass_tol = 1e-9;
  /// Slack on the per-state worst-case leave-probability budget.
  double budget_tol = 1e-9;
  /// Largest tolerated coefficient deviation between the re-extracted
  /// mean field and p * source. Looser than the boolean runtime gate
  /// (core::verifies_equivalence at 1e-9) only by giving the measured
  /// residual back instead of a yes/no.
  double residual_tol = 1e-7;
  /// Network failure rate fed to the mean-field extraction, mirroring
  /// what the machine was compensated for (spec.synthesis.failure_rate).
  double failure_rate = 0.0;
  /// States holding initial mass. Empty means "assume every state may be
  /// seeded" (bare-machine analysis without a spec).
  std::vector<std::size_t> seeded_states;
  /// Run the equilibrium search + stability classification (the one pass
  /// with real numerical cost: multi-start Newton over the simplex).
  bool fixed_points = true;
};

/// The mass.* pass.
[[nodiscard]] std::vector<Finding> check_mass(
    const core::ProtocolStateMachine& machine,
    const MachineCheckOptions& options = {});

/// The reach.* pass.
[[nodiscard]] std::vector<Finding> check_reachability(
    const core::ProtocolStateMachine& machine,
    const MachineCheckOptions& options = {});

/// The mean-field.* pass: residual of mean_field(machine, failure_rate)
/// against source.scaled(machine.normalizing_p()).
[[nodiscard]] std::vector<Finding> check_mean_field(
    const core::ProtocolStateMachine& machine,
    const ode::EquationSystem& source,
    const MachineCheckOptions& options = {});

/// The fixed-point.* pass over the re-extracted mean field.
[[nodiscard]] std::vector<Finding> check_fixed_points(
    const core::ProtocolStateMachine& machine,
    const MachineCheckOptions& options = {});

/// All four passes in catalog order. `source` is the system the machine
/// claims to implement (core::SynthesisResult::source for synthesized
/// machines).
[[nodiscard]] std::vector<Finding> analyze_machine(
    const core::ProtocolStateMachine& machine,
    const ode::EquationSystem& source,
    const MachineCheckOptions& options = {});

}  // namespace deproto::analysis
