#include "analysis/machine_checks.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/mean_field.hpp"
#include "core/transition_model.hpp"
#include "numerics/newton.hpp"
#include "numerics/stability.hpp"
#include "numerics/vector.hpp"
#include "ode/polynomial.hpp"
#include "ode/taxonomy.hpp"

namespace deproto::analysis {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string state_label(const core::ProtocolStateMachine& m, std::size_t s) {
  return "state " + m.state_name(s);
}

std::string action_label(std::size_t i) {
  return "action " + std::to_string(i);
}

/// Largest |coefficient| of the algebraic normal form of p (0 when p is
/// identically zero).
double max_abs_coefficient(const ode::Polynomial& p) {
  double worst = 0.0;
  for (const ode::Term& t : ode::simplified(p, 0.0)) {
    worst = std::max(worst, std::abs(t.coefficient()));
  }
  return worst;
}

}  // namespace

std::vector<Finding> check_mass(const core::ProtocolStateMachine& machine,
                                const MachineCheckOptions& options) {
  std::vector<Finding> findings;
  const auto shapes = core::channel_shapes(machine);

  // mass.action-bias: a coin bias outside [0, 1] is a per-period mass leak
  // (the expected moved mass exceeds the mass present in the from-state).
  for (const core::ChannelShape& sh : shapes) {
    if (!std::isfinite(sh.coin_bias) ||
        sh.coin_bias < -options.mass_tol ||
        sh.coin_bias > 1.0 + options.mass_tol) {
      findings.push_back(
          {Severity::Error, "mass.action-bias", action_label(sh.action),
           "coin bias " + fmt(sh.coin_bias) +
               " outside [0, 1]: the action moves more mass per period " +
               "than " + machine.state_name(sh.from) + " holds",
           sh.coin_bias});
    }
  }

  // mass.state-budget: the runtime stops a process after its first firing
  // each period, while the mean field adds rates. When the worst-case
  // leave probability of one state's own actions exceeds 1 the two
  // semantics must diverge (the synthesis constraint p*c*ff <= 1 exists
  // precisely to keep this sum feasible).
  for (std::size_t s = 0; s < machine.num_states(); ++s) {
    double budget = 0.0;
    for (const core::ChannelShape& sh : shapes) {
      if (sh.moves_executor && sh.executor == s) budget += sh.max_fire_prob;
    }
    if (budget > 1.0 + options.budget_tol) {
      findings.push_back(
          {Severity::Warning, "mass.state-budget", state_label(machine, s),
           "worst-case leave probability " + fmt(budget) +
               " exceeds 1: stop-after-first-firing runtime semantics " +
               "diverge from the additive mean field",
           budget});
    }
  }

  // mass.conservation: the expected drift must sum to zero at every
  // population point (mass neither appears nor vanishes). Unreachable for
  // the paired-action vocabulary; a structural guard for future kinds.
  const std::size_t m = machine.num_states();
  if (m > 0) {
    std::vector<num::Vec> samples;
    samples.push_back(num::Vec(m, 1.0 / static_cast<double>(m)));
    for (std::size_t s = 0; s < m; ++s) {
      num::Vec corner(m, 0.0);
      corner[s] = 1.0;
      samples.push_back(std::move(corner));
    }
    double worst = 0.0;
    for (const num::Vec& x : samples) {
      const num::Vec drift =
          core::exact_drift(machine, x, options.failure_rate);
      double total = 0.0;
      for (std::size_t s = 0; s < m; ++s) total += drift[s];
      worst = std::max(worst, std::abs(total));
    }
    if (worst > options.mass_tol) {
      findings.push_back(
          {Severity::Error, "mass.conservation", "simplex samples",
           "expected drift sums to " + fmt(worst) +
               " instead of 0: per-period mass is not conserved",
           worst});
    }
  }
  return findings;
}

std::vector<Finding> check_reachability(
    const core::ProtocolStateMachine& machine,
    const MachineCheckOptions& options) {
  std::vector<Finding> findings;
  const auto shapes = core::channel_shapes(machine);
  const std::size_t m = machine.num_states();

  std::vector<bool> seeded(m, false);
  if (options.seeded_states.empty()) {
    seeded.assign(m, true);
  } else {
    for (const std::size_t s : options.seeded_states) {
      if (s < m) seeded[s] = true;
    }
  }

  // A state is enterable when some action moves mass into it from a
  // different state (from == to channels move nothing).
  std::vector<bool> enterable(m, false);
  std::vector<bool> leavable(m, false);
  for (const core::ChannelShape& sh : shapes) {
    if (sh.to != sh.from) {
      enterable[sh.to] = true;
      leavable[sh.from] = true;
    }
  }

  // Reachable fixpoint over the mass-movement hypergraph: a channel can
  // fire once every state it requires occupied holds mass, and then its
  // to-state becomes occupied.
  std::vector<bool> reachable = seeded;
  bool grew = true;
  while (grew) {
    grew = false;
    for (const core::ChannelShape& sh : shapes) {
      if (reachable[sh.to]) continue;
      bool gated = false;
      for (const std::size_t s : sh.requires_occupied) {
        if (!reachable[s]) {
          gated = true;
          break;
        }
      }
      if (!gated) {
        reachable[sh.to] = true;
        grew = true;
      }
    }
  }

  for (std::size_t s = 0; s < m; ++s) {
    const bool absorbing = !leavable[s];
    if (!seeded[s] && !enterable[s]) {
      findings.push_back(
          {Severity::Error, "reach.dead-state", state_label(machine, s),
           "no action can enter this state and it is never seeded",
           static_cast<double>(s)});
    } else if (!reachable[s]) {
      if (absorbing) {
        findings.push_back({Severity::Warning, "reach.absorbing-unreachable",
                            state_label(machine, s),
                            "absorbing state is not reachable from the "
                            "seeded states: the dynamics can never "
                            "terminate there",
                            static_cast<double>(s)});
      } else {
        findings.push_back({Severity::Warning, "reach.unreachable",
                            state_label(machine, s),
                            "state is never seeded and not reachable from "
                            "the seeded states",
                            static_cast<double>(s)});
      }
    } else if (absorbing) {
      findings.push_back({Severity::Info, "reach.absorbing",
                          state_label(machine, s),
                          "no action moves mass out of this state",
                          static_cast<double>(s)});
    }
  }
  return findings;
}

std::vector<Finding> check_mean_field(
    const core::ProtocolStateMachine& machine,
    const ode::EquationSystem& source, const MachineCheckOptions& options) {
  std::vector<Finding> findings;
  const ode::EquationSystem derived =
      core::mean_field(machine, options.failure_rate);
  if (derived.num_vars() != source.num_vars()) {
    findings.push_back(
        {Severity::Error, "mean-field.shape", "mean field",
         "machine has " + std::to_string(derived.num_vars()) +
             " states but the source system has " +
             std::to_string(source.num_vars()) + " variables",
         static_cast<double>(derived.num_vars())});
    return findings;
  }

  const double p = machine.normalizing_p();
  const ode::EquationSystem expected = source.scaled(p);
  double residual = 0.0;
  std::size_t worst_var = 0;
  for (std::size_t v = 0; v < derived.num_vars(); ++v) {
    const double r = max_abs_coefficient(
        ode::sum(derived.rhs(v), ode::negated(expected.rhs(v))));
    if (r > residual) {
      residual = r;
      worst_var = v;
    }
  }
  if (residual > options.residual_tol) {
    findings.push_back(
        {Severity::Error, "mean-field.residual",
         "d" + derived.name(worst_var) + "/dt",
         "re-extracted mean field deviates from p * source (p = " + fmt(p) +
             ") by coefficient residual " + fmt(residual) +
             ": the machine does not implement the equations it claims",
         residual});
  } else {
    findings.push_back(
        {Severity::Info, "mean-field.residual", "mean field",
         "re-extracted mean field matches p * source (p = " + fmt(p) +
             ") with coefficient residual " + fmt(residual),
         residual});
  }
  return findings;
}

std::vector<Finding> check_fixed_points(
    const core::ProtocolStateMachine& machine,
    const MachineCheckOptions& options) {
  std::vector<Finding> findings;
  if (!options.fixed_points) return findings;

  const ode::EquationSystem derived =
      core::mean_field(machine, options.failure_rate).simplified();
  const bool complete = ode::is_complete(derived);
  const std::vector<num::Vec> roots = num::find_equilibria(derived);

  std::size_t on_simplex = 0;
  for (const num::Vec& x : roots) {
    double total = 0.0;
    double lowest = 1.0;
    for (std::size_t v = 0; v < x.size(); ++v) {
      total += x[v];
      lowest = std::min(lowest, x[v]);
    }
    if (lowest < -1e-9 || std::abs(total - 1.0) > 1e-6) continue;
    ++on_simplex;

    const num::StabilityReport report =
        complete ? num::classify_on_simplex(derived, x)
                 : num::classify_equilibrium(derived, x);
    double abscissa = 0.0;
    for (const std::complex<double>& ev : report.eigenvalues) {
      abscissa = std::max(abscissa, ev.real());
    }
    std::ostringstream where;
    where << "(";
    for (std::size_t v = 0; v < x.size(); ++v) {
      if (v != 0) where << ", ";
      where << machine.state_name(v) << "=" << fmt(x[v]);
    }
    where << ")";
    findings.push_back(
        {Severity::Info, "fixed-point.classified", where.str(),
         num::to_string(report.type) +
             (report.stable ? ", asymptotically stable" : ", not stable"),
         abscissa});
  }
  if (on_simplex == 0) {
    findings.push_back(
        {Severity::Warning, "fixed-point.none", "mean field",
         "no equilibrium found on the probability simplex: the protocol "
         "has no candidate resting distribution",
         0.0});
  }
  return findings;
}

std::vector<Finding> analyze_machine(
    const core::ProtocolStateMachine& machine,
    const ode::EquationSystem& source, const MachineCheckOptions& options) {
  std::vector<Finding> findings = check_mass(machine, options);
  std::vector<Finding> more = check_reachability(machine, options);
  findings.insert(findings.end(), std::make_move_iterator(more.begin()),
                  std::make_move_iterator(more.end()));
  more = check_mean_field(machine, source, options);
  findings.insert(findings.end(), std::make_move_iterator(more.begin()),
                  std::make_move_iterator(more.end()));
  more = check_fixed_points(machine, options);
  findings.insert(findings.end(), std::make_move_iterator(more.begin()),
                  std::make_move_iterator(more.end()));
  return findings;
}

}  // namespace deproto::analysis
