#include "analysis/exact_checks.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/exact_chain.hpp"
#include "core/fluctuations.hpp"
#include "core/mean_field.hpp"
#include "numerics/newton.hpp"
#include "numerics/stability.hpp"
#include "numerics/vector.hpp"
#include "ode/taxonomy.hpp"

namespace deproto::analysis {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fraction_point(const core::ProtocolStateMachine& machine,
                           const num::Vec& x) {
  std::ostringstream out;
  out << "(";
  for (std::size_t s = 0; s < x.size(); ++s) {
    if (s != 0) out << ", ";
    out << machine.state_name(s) << "=" << fmt(x[s]);
  }
  out << ")";
  return out.str();
}

std::string count_point(const core::ProtocolStateMachine& machine,
                        const std::vector<std::size_t>& counts) {
  std::ostringstream out;
  out << "(";
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (s != 0) out << ", ";
    out << machine.state_name(s) << "=" << counts[s];
  }
  out << ")";
  return out.str();
}

/// Mean-field equilibria on the probability simplex at the chain's loss
/// rate, split into stable and all. The trap / divergence rules compare
/// against the stable ones when any exist (an unstable equilibrium is not
/// where the mean field predicts mass to rest), else against all.
struct SimplexEquilibria {
  std::vector<num::Vec> stable;
  std::vector<num::Vec> all;

  [[nodiscard]] const std::vector<num::Vec>& reference() const {
    return stable.empty() ? all : stable;
  }
};

SimplexEquilibria simplex_equilibria(
    const core::ProtocolStateMachine& machine, double message_loss) {
  SimplexEquilibria out;
  const ode::EquationSystem derived =
      core::mean_field(machine, message_loss).simplified();
  const bool complete = ode::is_complete(derived);
  for (const num::Vec& x : num::find_equilibria(derived)) {
    double total = 0.0;
    double lowest = 1.0;
    for (std::size_t v = 0; v < x.size(); ++v) {
      total += x[v];
      lowest = std::min(lowest, x[v]);
    }
    if (lowest < -1e-9 || std::abs(total - 1.0) > 1e-6) continue;
    const num::StabilityReport report =
        complete ? num::classify_on_simplex(derived, x)
                 : num::classify_equilibrium(derived, x);
    out.all.push_back(x);
    if (report.stable) out.stable.push_back(x);
  }
  return out;
}

double linf_distance(const num::Vec& a, const num::Vec& b) {
  double worst = 0.0;
  for (std::size_t s = 0; s < a.size(); ++s) {
    worst = std::max(worst, std::abs(a[s] - b[s]));
  }
  return worst;
}

/// L-inf distance (in fractions) from a chain state to the nearest
/// reference equilibrium; infinity when there are none.
double distance_to_reference(const ExactChain& chain, std::size_t state,
                             const std::vector<num::Vec>& reference) {
  const std::vector<std::size_t>& counts = chain.state(state);
  num::Vec frac(counts.size(), 0.0);
  for (std::size_t s = 0; s < counts.size(); ++s) {
    frac[s] = static_cast<double>(counts[s]) /
              static_cast<double>(chain.options().n);
  }
  double best = std::numeric_limits<double>::infinity();
  for (const num::Vec& ref : reference) {
    best = std::min(best, linf_distance(frac, ref));
  }
  return best;
}

}  // namespace

std::vector<Finding> check_exact(const core::ProtocolStateMachine& machine,
                                 const std::vector<std::size_t>& seed_counts,
                                 const ExactCheckOptions& options,
                                 double message_loss,
                                 sim::TokenRouting tokens) {
  std::vector<Finding> findings;

  const std::size_t lattice =
      ExactChain::state_space_size(machine.num_states(), options.n);
  if (lattice > options.max_states) {
    findings.push_back(
        {Severity::Info, "exact.state-budget", "exact chain",
         "count-vector lattice has " + std::to_string(lattice) +
             " states at n = " + std::to_string(options.n) +
             ", over the max_states budget of " +
             std::to_string(options.max_states) +
             ": exact analysis skipped (lower --exact-n or raise "
             "--exact-max-states)",
         static_cast<double>(lattice)});
    return findings;
  }

  ExactChainOptions chain_options;
  chain_options.n = options.n;
  chain_options.max_states = options.max_states;
  chain_options.max_row_branches = options.max_row_branches;
  chain_options.message_loss = message_loss;
  chain_options.tokens = tokens;
  std::optional<ExactChain> chain;
  try {
    chain.emplace(machine, chain_options);
  } catch (const ExactChainBudgetError& e) {
    findings.push_back({Severity::Info, "exact.state-budget", "exact chain",
                        std::string(e.what()) +
                            ": exact analysis skipped (lower --exact-n or "
                            "raise the budget)",
                        static_cast<double>(lattice)});
    return findings;
  }

  const std::size_t start = chain->seeded_index(seed_counts);
  const SimplexEquilibria equilibria =
      simplex_equilibria(machine, message_loss);
  const std::vector<double> absorb = chain->absorption_probabilities(start);
  const std::vector<std::size_t> recurrent = chain->recurrent_classes();

  for (const std::size_t k : recurrent) {
    const CommunicatingClass& cls = chain->classes()[k];
    const std::string where =
        cls.absorbing
            ? "absorbing state " +
                  count_point(machine, chain->state(cls.members.front()))
            : "recurrent class of " + std::to_string(cls.members.size()) +
                  " states incl. " +
                  count_point(machine, chain->state(cls.members.front()));
    findings.push_back(
        {Severity::Info, "exact.absorbing-class", where,
         "the chain is absorbed here with probability " + fmt(absorb[k]) +
             " from the seeded start",
         absorb[k]});

    if (absorb[k] <= options.trap_prob_tol) continue;
    if (equilibria.reference().empty()) continue;
    double class_distance = std::numeric_limits<double>::infinity();
    for (const std::size_t member : cls.members) {
      class_distance = std::min(
          class_distance,
          distance_to_reference(*chain, member, equilibria.reference()));
    }
    if (class_distance > options.divergence_tol) {
      findings.push_back(
          {Severity::Warning, "exact.transient-trap", where,
           "absorbed with probability " + fmt(absorb[k]) +
               " into a class at L-inf distance " + fmt(class_distance) +
               " from every mean-field equilibrium: a finite-N trap the "
               "mean field does not predict",
           absorb[k]});
    }
  }

  if (!chain->classes()[chain->class_of(start)].recurrent) {
    const double hitting = chain->expected_absorption_time(start);
    findings.push_back(
        {Severity::Info, "exact.hitting-time",
         "start " + count_point(machine, chain->state(start)),
         "expected " + fmt(hitting) +
             " periods until absorption into a recurrent class",
         hitting});
  }

  if (recurrent.size() == 1 && !equilibria.reference().empty()) {
    const std::vector<double> dist = chain->stationary_distribution();
    const num::Vec mean = chain->mean_fractions(dist);
    std::size_t nearest = 0;
    double best = std::numeric_limits<double>::infinity();
    const std::vector<num::Vec>& reference = equilibria.reference();
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const double d = linf_distance(mean, reference[i]);
      if (d < best) {
        best = d;
        nearest = i;
      }
    }
    findings.push_back(
        {best > options.divergence_tol ? Severity::Warning : Severity::Info,
         "exact.meanfield-divergence", fraction_point(machine, mean),
         "exact stationary mean vs mean-field equilibrium " +
             fraction_point(machine, reference[nearest]) +
             ": L-inf distance " + fmt(best) + " at n = " +
             std::to_string(options.n),
         best});

    // CLT cross-check, only against a *stable* equilibrium (the
    // linear-noise prediction requires one; stationary_fluctuations
    // throws otherwise, which simply means there is nothing to compare).
    if (!equilibria.stable.empty()) {
      try {
        const core::FluctuationReport clt = core::stationary_fluctuations(
            machine, reference[nearest], static_cast<double>(options.n),
            message_loss);
        const num::Vec exact_stddev = chain->count_stddev(dist);
        double gap = 0.0;
        std::size_t gap_state = 0;
        for (std::size_t s = 0; s < exact_stddev.size(); ++s) {
          if (clt.count_stddev[s] < 1e-9) continue;
          const double rel =
              std::abs(exact_stddev[s] / clt.count_stddev[s] - 1.0);
          if (rel > gap) {
            gap = rel;
            gap_state = s;
          }
        }
        findings.push_back(
            {gap > options.fluctuation_tol ? Severity::Warning
                                           : Severity::Info,
             "exact.fluctuation-mismatch",
             "state " + machine.state_name(gap_state),
             "exact stationary count stddev " + fmt(exact_stddev[gap_state]) +
                 " vs CLT prediction " + fmt(clt.count_stddev[gap_state]) +
                 " (relative gap " + fmt(gap) + ") at n = " +
                 std::to_string(options.n),
             gap});
      } catch (const std::runtime_error&) {
        // Nearest equilibrium not stable enough for the Lyapunov solve.
      }
    }
  }

  return findings;
}

}  // namespace deproto::analysis
