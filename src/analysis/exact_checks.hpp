#pragma once

// The exact.* rule family: findings derived from the explicit-state
// Markov chain of analysis/exact_chain.hpp, the finite-N tier of the
// static verifier. Where the machine checks trust the mean field (exact
// only as N -> infinity), these rules report what provably happens to a
// small population -- and flag the places where the two tiers disagree,
// which is precisely the finite-N gap the paper's Theorems 1/5 leave
// open.
//
// Rule catalog:
//   exact.state-budget          (info)    the count-vector lattice or a
//                                         kernel row exceeded its budget;
//                                         the exact pass was skipped
//   exact.absorbing-class       (info)    one recurrent (closed)
//                                         communicating class, with the
//                                         exact probability the chain is
//                                         absorbed into it from the
//                                         seeded start
//   exact.transient-trap        (warning) the chain reaches a recurrent
//                                         class far (L-inf) from every
//                                         mean-field equilibrium with
//                                         non-negligible probability: a
//                                         finite-N trap the mean field
//                                         does not predict
//   exact.hitting-time          (info)    expected periods until the
//                                         seeded start is absorbed into
//                                         some recurrent class
//   exact.meanfield-divergence  (info /   L-inf distance between the
//                                warning) exact stationary mean and the
//                                         nearest mean-field equilibrium
//                                         (ergodic chains only); warning
//                                         past divergence_tol
//   exact.fluctuation-mismatch  (info /   relative gap between the exact
//                                warning) stationary count stddev and the
//                                         CLT prediction of
//                                         core/fluctuations.*; warning
//                                         past fluctuation_tol
//
// All exact.* severities are at most warning: a finite-N divergence is a
// judgement call about scale, not a broken machine, so suppressions and
// --strict keep working the same way they do for the mean-field rules.

#include <cstddef>
#include <vector>

#include "analysis/report.hpp"
#include "core/state_machine.hpp"
#include "sim/runtime.hpp"

namespace deproto::analysis {

struct ExactCheckOptions {
  /// Population size the exact chain is built at. Scenario entry points
  /// rescale the spec (ScenarioSpec::scaled_to) before seeding.
  std::size_t n = 32;
  /// Lattice budget: skip (exact.state-budget) when C(n+S-1, S-1)
  /// exceeds this.
  std::size_t max_states = 20000;
  /// Per-kernel-row outcome budget (ExactChainOptions::max_row_branches).
  std::size_t max_row_branches = 4000000;
  /// L-inf distance (in fractions) past which the exact chain and the
  /// mean field are considered divergent (transient-trap and
  /// meanfield-divergence severities).
  double divergence_tol = 0.10;
  /// Relative gap past which the exact count stddev contradicts the CLT
  /// prediction. Loose by default: the linear-noise approximation is
  /// itself only asymptotic, so small-N gaps of tens of percent are
  /// expected rather than suspicious.
  double fluctuation_tol = 0.5;
  /// Absorption probabilities at or below this are not reported as traps
  /// (unreachable corners of the lattice stay quiet).
  double trap_prob_tol = 1e-6;
};

/// Run the exact finite-N pass on one machine. `seed_counts` are
/// population counts at size options.n (shorter vectors pad; the
/// remainder seeds state 0, matching sim::Simulator::seed_states);
/// `message_loss` and `tokens` mirror the runtime options the count
/// backend would run with. Budget overruns become the exact.state-budget
/// finding, never an exception.
[[nodiscard]] std::vector<Finding> check_exact(
    const core::ProtocolStateMachine& machine,
    const std::vector<std::size_t>& seed_counts,
    const ExactCheckOptions& options, double message_loss = 0.0,
    sim::TokenRouting tokens = {});

}  // namespace deproto::analysis
