#pragma once

// On-disk, content-addressed memoization of ExperimentResults: the unit of
// work a sweep re-executes after editing one axis is the SweepJob, and a
// job is fully determined by its concrete ScenarioSpec (sweep expansion
// bakes the replicate seed into spec.seed). So the cache key is a SHA-256
// over the canonical compact ScenarioSpec JSON plus a cache-format/code
// salt, and the cached payload is the job's deterministic
// ExperimentResult::to_json(false) document -- a warm replay parses to a
// result whose re-dump is byte-identical to the cold run's.
//
//   ResultCache cache("/tmp/deproto-cache");
//   SuiteOptions options;
//   options.cache = &cache;                  // lookup-before-execute +
//   SuiteRunner(options).run(sweep);         // write-through-after
//
// Entries are self-describing two-line files named <key>.json: line one
// is a header object (format version, salt, the full spec, the result's
// pre-extracted metric vector, and the body's byte count), line two the
// raw canonical result dump. The split exists for the dispatch tier's
// warm path: load_entry() verifies the header and hands back the dump
// verbatim -- a worker replays a multi-megabyte result without parsing
// its body, because the dump IS the deterministic serialization. Anything
// that fails to open, parse, or validate (truncated write, stale format,
// salt mismatch, hash collision) is treated as a miss, re-run, and
// atomically overwritten -- a corrupt cache can cost time, never
// correctness. Failed jobs are never cached (they re-run every time,
// counted as `skipped`).

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>

#include "api/experiment.hpp"
#include "api/json.hpp"
#include "api/spec.hpp"

namespace deproto::api {

/// SHA-256 of `bytes` as 64 lowercase hex chars (FIPS 180-4, hand-rolled
/// -- no new dependency). The primitive under key_for(), exposed so tests
/// can pin it against the NIST vectors.
[[nodiscard]] std::string sha256_hex(const std::string& bytes);

/// Cache accounting over one ResultCache's lifetime. SuiteRunner reports
/// the per-run delta in SweepResult::cache; the CLI prints it.
struct CacheStats {
  std::size_t hits = 0;    ///< entries loaded instead of executed
  std::size_t misses = 0;  ///< lookups that had to execute (incl. corrupt)
  std::size_t corrupt = 0;  ///< subset of misses: entry present but invalid
  std::size_t stores = 0;   ///< entries written after a miss
  std::size_t skipped = 0;  ///< failed jobs: never cached, always re-run

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

/// A memoized entry in its on-disk form: the raw canonical result dump
/// (ExperimentResult::to_json(false).dump(), never re-serialized) plus the
/// metric vector extracted when it was stored. The dispatch tier's warm
/// currency -- everything a worker must report about a job without
/// parsing the result body.
struct CachedEntry {
  Json metrics;  ///< insertion-ordered object, detail::metrics_to_json form
  std::string result_dump;
};

class ResultCache {
 public:
  /// Bumped whenever the key derivation or the cached payload shape
  /// changes incompatibly; every key hashes it, so a binary with a new
  /// format sees an old directory as all misses instead of bad replays.
  /// v2: two-line entries (header + raw dump) carrying pre-extracted
  /// metrics, enabling the parse-free load_entry() warm path.
  static constexpr int kFormatVersion = 2;

  /// Opens (creating, with parents) the cache directory. `salt` is the
  /// user-level invalidation knob: any change to it -- new code revision,
  /// edited protocol table, "just re-run everything" -- renames every key.
  /// Throws SpecError when the directory cannot be created.
  explicit ResultCache(std::filesystem::path dir, std::string salt = "");

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  [[nodiscard]] const std::string& salt() const noexcept { return salt_; }

  /// The content address of one concrete spec: 64 hex chars of
  /// SHA-256("deproto-result-cache/v<N>\n<salt>\n<canonical spec dump>").
  /// The compact spec dump is canonical by construction (ordered keys,
  /// normalized numbers), so semantically equal specs share a key.
  [[nodiscard]] std::string key_for(const ScenarioSpec& spec) const;

  /// Lookup-before-execute: returns the memoized result, or nullopt on
  /// miss. A present-but-invalid entry (unparseable, wrong format/salt,
  /// spec mismatch) counts as corrupt + miss; the caller re-runs and
  /// store() overwrites it. Thread-safe.
  [[nodiscard]] std::optional<ExperimentResult> load(const ScenarioSpec& spec);

  /// load() without the body parse: header verification only, the result
  /// dump returned verbatim. The dispatch worker's warm path -- hit
  /// handling costs O(bytes copied), not O(JSON tree). Same miss/corrupt
  /// accounting as load(). Thread-safe.
  [[nodiscard]] std::optional<CachedEntry> load_entry(const ScenarioSpec& spec);

  /// Write-through-after: memoize a successful result under spec's key
  /// (atomic tmp-file + rename, so a crashed run never leaves a torn
  /// entry under the final name). Best-effort: I/O failures are swallowed
  /// -- the cache degrades to re-running, it never fails a sweep.
  /// Thread-safe.
  void store(const ScenarioSpec& spec, const ExperimentResult& result);

  /// store() for callers that already hold the canonical dump (dispatch
  /// workers stream the series straight into text and never build the
  /// PeriodPoint tree): memoizes `result_dump` verbatim with `metrics`
  /// alongside. The dump must be exactly to_json(false).dump() of the
  /// result -- it is what load()/load_entry() replay.
  void store_dump(const ScenarioSpec& spec, const std::string& result_dump,
                  const Json& metrics);

  /// Record a job that ran and failed; failures are not memoized.
  void note_skipped();

  [[nodiscard]] CacheStats stats() const;

  /// Size bound on the entry files in dir(): when non-zero, store() keeps
  /// the total size of <key>.json entries at or below `max_bytes` by
  /// evicting least-recently-used entries first (recency is the entry
  /// file's mtime; load() hits refresh it, so replayed entries stay warm).
  /// 0 -- the default -- means unbounded. The bound is enforced as
  /// entries are stored, best-effort: an already-oversized directory only
  /// shrinks once something new is written into it.
  void set_max_bytes(std::uint64_t max_bytes);
  [[nodiscard]] std::uint64_t max_bytes() const;

  /// Entries this instance evicted to stay under max_bytes(). Kept out of
  /// CacheStats so the SweepResult serialization is unchanged.
  [[nodiscard]] std::size_t evictions() const;

  /// Garbage collection: remove every entry file in dir() that this
  /// instance neither loaded nor stored (stale points from edited sweeps,
  /// abandoned tmp files, foreign junk). Call after the runs that define
  /// the live set; returns the number of files removed.
  std::size_t gc_unused();

 private:
  /// key_for with the spec already canonicalized: load/store serialize
  /// the spec exactly once per call instead of once per use.
  [[nodiscard]] std::string key_for_dump(const std::string& spec_dump) const;
  [[nodiscard]] std::filesystem::path entry_path(const std::string& key) const;

  /// Read + verify one entry file against `spec_dump`, stats-free (the
  /// public loaders translate the outcome into hit/miss/corrupt counts).
  enum class EntryRead { Absent, Corrupt, Ok };
  EntryRead read_entry(const std::filesystem::path& path,
                       const std::string& spec_dump, CachedEntry* out) const;

  /// Rescan dir() and evict oldest-mtime entries (filename breaks ties,
  /// for determinism) until the total is within max_bytes_. Caller holds
  /// mu_. Leaves approx_bytes_ equal to the post-eviction total.
  void enforce_size_bound_locked();

  std::filesystem::path dir_;
  std::string salt_;

  mutable std::mutex mu_;
  std::unordered_set<std::string> used_;  // entry filenames touched
  CacheStats stats_;
  std::uint64_t max_bytes_ = 0;  // 0 = unbounded
  /// Running estimate of the entry bytes in dir(), used to skip the
  /// directory rescan while comfortably under the bound. Lazily seeded
  /// from a scan at the first bounded store; overwrites double-count
  /// until the next enforcement rescan corrects them (approximation only
  /// ever triggers enforcement early, never late by more than the drift).
  std::uint64_t approx_bytes_ = 0;
  bool approx_bytes_valid_ = false;
  std::size_t evictions_ = 0;
};

}  // namespace deproto::api
