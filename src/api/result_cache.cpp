#include "api/result_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "api/job_metrics.hpp"
#include "api/json.hpp"

namespace deproto::api {

namespace {

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), one-shot. ~60 lines beats a new dependency, and a
// cryptographic digest makes accidental key collisions a non-concern even
// across millions of cached jobs (entries still self-verify on load).

constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void sha256_block(std::uint32_t state[8], const unsigned char* p) {
  std::uint32_t m[64];
  for (int i = 0; i < 16; ++i) {
    m[i] = (std::uint32_t{p[4 * i]} << 24) |
           (std::uint32_t{p[4 * i + 1]} << 16) |
           (std::uint32_t{p[4 * i + 2]} << 8) | std::uint32_t{p[4 * i + 3]};
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(m[i - 15], 7) ^ rotr(m[i - 15], 18) ^ (m[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(m[i - 2], 17) ^ rotr(m[i - 2], 19) ^ (m[i - 2] >> 10);
    m[i] = m[i - 16] + s0 + m[i - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + S1 + ch + kSha256K[i] + m[i];
    const std::uint32_t S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = S0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace

std::string sha256_hex(const std::string& bytes) {
  std::uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t remaining = bytes.size();
  while (remaining >= 64) {
    sha256_block(state, data);
    data += 64;
    remaining -= 64;
  }
  // Final block(s): message tail, 0x80, zero padding, 64-bit bit length.
  unsigned char tail[128] = {0};
  for (std::size_t i = 0; i < remaining; ++i) tail[i] = data[i];
  tail[remaining] = 0x80;
  const std::size_t tail_len = remaining + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bits = std::uint64_t{bytes.size()} * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 1 - i] = static_cast<unsigned char>(bits >> (8 * i));
  }
  sha256_block(state, tail);
  if (tail_len == 128) sha256_block(state, tail + 64);

  std::string hex(64, '0');
  static const char kDigits[] = "0123456789abcdef";
  for (int w = 0; w < 8; ++w) {
    for (int nibble = 0; nibble < 8; ++nibble) {
      hex[static_cast<std::size_t>(8 * w + nibble)] =
          kDigits[(state[w] >> (28 - 4 * nibble)) & 0xF];
    }
  }
  return hex;
}

ResultCache::ResultCache(std::filesystem::path dir, std::string salt)
    : dir_(std::move(dir)), salt_(std::move(salt)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (!std::filesystem::is_directory(dir_)) {
    throw SpecError("result cache: cannot create directory " + dir_.string() +
                    (ec ? " (" + ec.message() + ")" : ""));
  }
}

std::string ResultCache::key_for_dump(const std::string& spec_dump) const {
  // The canonical compact dump is the content being addressed; the header
  // folds in the format version and the user salt so either one changing
  // invalidates every key at once.
  std::string material = "deproto-result-cache/v";
  material += std::to_string(kFormatVersion);
  material += '\n';
  material += salt_;
  material += '\n';
  material += spec_dump;
  return sha256_hex(material);
}

std::string ResultCache::key_for(const ScenarioSpec& spec) const {
  return key_for_dump(spec.to_json().dump());
}

std::filesystem::path ResultCache::entry_path(const std::string& key) const {
  return dir_ / (key + ".json");
}

ResultCache::EntryRead ResultCache::read_entry(
    const std::filesystem::path& path, const std::string& spec_dump,
    CachedEntry* out) const {
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) return EntryRead::Absent;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string contents = std::move(buffer).str();
    // v2 entry: "<header json>\n<result dump>\n".
    const std::size_t split = contents.find('\n');
    if (split == std::string::npos) return EntryRead::Corrupt;
    const Json header = Json::parse(contents.substr(0, split));
    // Self-verification: format, salt, and the full stored spec must
    // match. The spec comparison turns a (vanishingly unlikely) hash
    // collision into a miss instead of a silently wrong replay, and
    // doubles as the stale-format check for v1 entries (single-line JSON
    // with format == 1: header parse succeeds, format test fails).
    if (header.at("format").as_size() !=
            static_cast<std::size_t>(kFormatVersion) ||
        header.get_or("salt", std::string()) != salt_ ||
        header.at("spec").dump() != spec_dump) {
      return EntryRead::Corrupt;
    }
    std::string dump = contents.substr(split + 1);
    if (!dump.empty() && dump.back() == '\n') dump.pop_back();
    // The warm path never parses the body, so integrity rests on the
    // header's recorded byte count (catches truncation; torn writes are
    // already impossible under tmp+rename) plus the canonical dump's
    // fixed delimiters.
    if (dump.size() != header.at("result_bytes").as_size() ||
        dump.empty() || dump.front() != '{' || dump.back() != '}') {
      return EntryRead::Corrupt;
    }
    out->metrics = header.at("metrics");
    out->result_dump = std::move(dump);
    return EntryRead::Ok;
  } catch (const std::exception&) {
    return EntryRead::Corrupt;  // unparseable or shape-mismatched header
  }
}

std::optional<CachedEntry> ResultCache::load_entry(const ScenarioSpec& spec) {
  const std::string spec_dump = spec.to_json().dump();
  const std::filesystem::path path = entry_path(key_for_dump(spec_dump));

  CachedEntry entry;
  const EntryRead read = read_entry(path, spec_dump, &entry);

  if (read == EntryRead::Ok) {
    // A hit is a use: refresh the entry's mtime so the LRU size bound
    // (set_max_bytes) evicts cold entries before replayed ones.
    std::error_code touch_ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), touch_ec);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (read == EntryRead::Ok) {
    ++stats_.hits;
    used_.insert(path.filename().string());
    return entry;
  }
  ++stats_.misses;
  if (read == EntryRead::Corrupt) ++stats_.corrupt;
  return std::nullopt;
}

std::optional<ExperimentResult> ResultCache::load(const ScenarioSpec& spec) {
  std::optional<CachedEntry> entry = load_entry(spec);
  if (!entry.has_value()) return std::nullopt;
  try {
    return ExperimentResult::from_json(Json::parse(entry->result_dump));
  } catch (const std::exception&) {
    // Header verified but the body did not parse: demote the counted hit
    // to a corrupt miss so the accounting matches what the caller saw.
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.hits;
    ++stats_.misses;
    ++stats_.corrupt;
    return std::nullopt;
  }
}

void ResultCache::store(const ScenarioSpec& spec,
                        const ExperimentResult& result) {
  store_dump(spec, result.to_json(/*include_timing=*/false).dump(),
             detail::metrics_to_json(detail::result_metrics(result)));
}

void ResultCache::store_dump(const ScenarioSpec& spec,
                             const std::string& result_dump,
                             const Json& metrics) {
  Json spec_json = spec.to_json();
  const std::string key = key_for_dump(spec_json.dump());
  const std::filesystem::path path = entry_path(key);

  // Header line only; the (deterministic-form) result dump is appended
  // verbatim as line two. Wall-clock never enters an entry: it would leak
  // one machine's timing into every later replay.
  Json header = Json::object();
  header.set("format", Json::number(kFormatVersion));
  header.set("salt", Json::string(salt_));
  header.set("spec", std::move(spec_json));
  header.set("metrics", metrics);
  header.set("result_bytes", Json::number(result_dump.size()));

  // Unique tmp name per writer (pid x thread, so concurrent processes
  // sharing one cache dir cannot interleave into the same tmp file), then
  // an atomic rename: a crash mid-write can never leave a torn file under
  // the final name -- at worst a stray .tmp that gc_unused() sweeps up.
  const std::size_t writer =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::filesystem::path tmp =
      dir_ / (key + ".tmp." + std::to_string(getpid()) + "." +
              std::to_string(writer));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << header.dump() << '\n' << result_dump << '\n';
    if (!out.flush().good()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;  // best-effort: an unwritable cache just stops memoizing
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }

  std::error_code size_ec;
  const std::uint64_t entry_bytes = std::filesystem::file_size(path, size_ec);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stores;
  used_.insert(path.filename().string());
  if (max_bytes_ > 0) {
    if (approx_bytes_valid_) {
      approx_bytes_ += size_ec ? 0 : entry_bytes;
    }
    if (!approx_bytes_valid_ || approx_bytes_ > max_bytes_) {
      enforce_size_bound_locked();
    }
  }
}

void ResultCache::note_skipped() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.skipped;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ResultCache::set_max_bytes(std::uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_bytes_ = max_bytes;
  approx_bytes_valid_ = false;  // reseed from a scan at the next store
}

std::uint64_t ResultCache::max_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_bytes_;
}

std::size_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void ResultCache::enforce_size_bound_locked() {
  struct Entry {
    std::filesystem::file_time_type mtime;
    std::string name;  // mtime tie-break, so eviction order is stable
    std::uint64_t bytes = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir_, ec)) {
    if (!dirent.is_regular_file()) continue;
    if (dirent.path().extension() != ".json") continue;  // skip stray .tmp
    std::error_code stat_ec;
    Entry entry;
    entry.mtime = dirent.last_write_time(stat_ec);
    if (stat_ec) continue;
    entry.bytes = dirent.file_size(stat_ec);
    if (stat_ec) continue;
    entry.name = dirent.path().filename().string();
    total += entry.bytes;
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::tie(a.mtime, a.name) < std::tie(b.mtime, b.name);
            });
  for (const Entry& entry : entries) {
    if (total <= max_bytes_) break;
    std::error_code remove_ec;
    if (!std::filesystem::remove(dir_ / entry.name, remove_ec)) continue;
    total -= entry.bytes;
    ++evictions_;
  }
  approx_bytes_ = total;
  approx_bytes_valid_ = true;
}

std::size_t ResultCache::gc_unused() {
  std::unordered_set<std::string> keep;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keep = used_;
  }
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir_, ec)) {
    if (!dirent.is_regular_file()) continue;
    const std::string name = dirent.path().filename().string();
    if (keep.count(name) != 0) continue;
    std::error_code remove_ec;
    if (std::filesystem::remove(dirent.path(), remove_ec)) ++removed;
  }
  return removed;
}

}  // namespace deproto::api
