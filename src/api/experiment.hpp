#pragma once

// The single entry point for the paper's whole pipeline: an Experiment
// takes a declarative ScenarioSpec and owns the wiring that every caller
// used to hand-roll -- parse/resolve the source system, classify it,
// synthesize the state machine, verify the mean field, stand up the
// simulator backend (sync, event, count, or auto-resolved) with the
// spec's fault plan, run it, and collect a structured, JSON-serializable
// ExperimentResult.
//
//   api::Experiment experiment(api::registry_get("epidemic"));
//   const api::ExperimentResult result = experiment.run();
//   std::ofstream("out.json") << result.to_json().dump(2);
//
// Callers that need mid-run access (convergence-driven loops, targeted
// attacks, live state mutation) use launch() and drive the returned
// ExperimentRun themselves; run() is launch + advance(periods) + finish.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/spec.hpp"
#include "core/synthesis.hpp"
#include "net/net_sim.hpp"
#include "ode/taxonomy.hpp"
#include "sim/count_sim.hpp"
#include "sim/event_sim.hpp"
#include "sim/runtime.hpp"
#include "sim/simulator.hpp"
#include "sim/sync_sim.hpp"

namespace deproto::api {

/// One recorded period: populations at the END of the period whose start
/// time is `time` (so `time + 1` in period units).
struct PeriodPoint {
  double time = 0.0;
  std::vector<std::size_t> counts;
  std::size_t total_alive = 0;
};

struct ConvergenceSummary {
  std::size_t dominant_state = 0;
  double dominant_fraction = 0.0;  // of alive processes at the end
  bool absorbed = false;           // every alive process in dominant_state
  /// Start time of the longest suffix over which the dominant state's
  /// population stayed within 2% of its final value; -1 when empty.
  double settle_time = -1.0;

  friend bool operator==(const ConvergenceSummary&,
                         const ConvergenceSummary&) = default;
};

struct ExperimentResult {
  std::string scenario;
  std::vector<std::string> state_names;
  /// Taxonomy verdicts of the resolved source system (partition witness
  /// not serialized).
  ode::TaxonomyReport taxonomy;
  double p = 1.0;
  bool mean_field_verified = false;
  std::vector<std::string> notes;  // synthesis mapping decisions
  std::string machine_text;        // Figure-3-style rendering

  std::vector<std::size_t> initial_counts;
  std::vector<PeriodPoint> series;  // one point per period (or time unit)
  std::vector<std::size_t> final_counts;
  std::size_t final_alive = 0;

  sim::TokenStats tokens;           // sync backend
  std::uint64_t probes_total = 0;   // sync backend
  std::uint64_t messages_sent = 0;     // event + net backends
  std::uint64_t messages_dropped = 0;  // event (synthetic) / net (measured)

  /// Net backend only: the measured network behavior (RTT, observed
  /// loss, reordering, duplicates). Absent on the simulated backends, so
  /// their result JSON is byte-identical to what it was before the net
  /// layer existed.
  std::optional<net::NetStats> net_stats;

  ConvergenceSummary convergence;

  /// Wall-clock seconds Experiment::run() took (launch + advance +
  /// finish); 0 when the result was assembled some other way. Timing, so
  /// it is excluded from the deterministic serialization (below).
  double elapsed_seconds = 0.0;

  /// Populations at period `t`: initial_counts for t == 0, otherwise the
  /// end of period t-1 (exactly what the legacy print loops reported).
  [[nodiscard]] const std::vector<std::size_t>& counts_at(
      std::size_t period) const;

  /// With include_timing, the document carries elapsed_seconds; without
  /// it, two runs of the same ScenarioSpec dump byte-identical JSON (the
  /// determinism contract tests/api/determinism_test.cpp pins down).
  [[nodiscard]] Json to_json(bool include_timing = true) const;
  static ExperimentResult from_json(const Json& j);
};

class Experiment;

/// A launched, steppable experiment: the facade's escape hatch for callers
/// that interleave simulation with inspection or mutation. Valid only
/// while the owning Experiment is alive.
class ExperimentRun {
 public:
  ExperimentRun(ExperimentRun&&) noexcept = default;
  ExperimentRun& operator=(ExperimentRun&&) noexcept = default;

  /// Per-node process table. Per-node backends only: the count backend
  /// has no identities, so this throws SpecError steering callers that
  /// need them (host history, token tracing, targeted mutation by pid) to
  /// backend sync or event.
  [[nodiscard]] sim::Group& group();
  /// The live backend, through the unified fault/scheduling interface:
  /// callers can program mid-run faults without caring which backend the
  /// spec selected.
  [[nodiscard]] sim::Simulator& simulator() { return *simulator_; }
  /// Periods advanced so far.
  [[nodiscard]] std::size_t period() const noexcept { return advanced_; }

  void advance(std::size_t periods);

  /// Streaming series mode, the per-job memory budget for very long runs:
  /// every completed period is converted to a PeriodPoint and handed to
  /// `sink` instead of being retained (neither the simulator's metrics
  /// collector nor the eventual result holds the full series -- a
  /// 10^6-period job costs O(states) per period, not O(periods) trees).
  /// finish() computes the same ConvergenceSummary from a compact columnar
  /// count history and leaves result.series empty; the caller already owns
  /// every point. Must be armed before the first advance(), on the run
  /// object at its final address (the sink is wired to `this`), and a null
  /// sink just discards points after the history is recorded.
  void stream_series(std::function<void(const PeriodPoint&)> sink);

  /// Assemble the structured result from everything recorded so far.
  [[nodiscard]] ExperimentResult finish();

 private:
  friend class Experiment;
  explicit ExperimentRun(Experiment& owner);

  Experiment* owner_;
  std::size_t advanced_ = 0;
  std::vector<std::size_t> initial_counts_;
  // Streaming mode state: per-state count columns + times, the compact
  // history finish() needs for the convergence summary when the full
  // series was streamed away instead of retained.
  bool streaming_ = false;
  std::vector<double> stream_times_;
  std::vector<std::vector<std::size_t>> stream_counts_;  // [state][period]
  // The backend, programmed exclusively through sim::Simulator. The
  // concrete pointers below are non-owning views for backend-specific
  // result stats (token/probe counters vs. network counters).
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<sim::MachineExecutor> executor_;  // sync backend only
  sim::EventSimulator* event_ = nullptr;            // event backend only
  sim::CountSimulator* count_ = nullptr;            // count backend only
  net::NetSimulator* net_ = nullptr;                // net backend only
};

class Experiment {
 public:
  explicit Experiment(ScenarioSpec spec);

  // Launched ExperimentRuns point back at their Experiment, so it must not
  // relocate while a run is live. Store experiments directly (or in a
  // non-relocating container like std::deque), not in a growing vector.
  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }

  /// Stage 1 of the pipeline: the resolved source system and its Section 2
  /// classification. Available even when synthesis would fail, so callers
  /// (deproto-synth) can show parse/taxonomy diagnostics first.
  struct Resolved {
    ode::EquationSystem source;    // as resolved, before any auto-rewrite
    ode::TaxonomyReport taxonomy;  // of the resolved source
  };
  /// Resolve + classify. Throws SpecError or ode::ParseError.
  const Resolved& resolved();

  /// Stage 2: everything through synthesis and verification.
  struct Artifacts {
    ode::EquationSystem source;    // as resolved, before any auto-rewrite
    ode::TaxonomyReport taxonomy;  // of the resolved source
    core::SynthesisResult synthesis;
    bool mean_field_verified = false;
  };
  /// Resolve + classify + synthesize + verify. Throws SpecError,
  /// ode::ParseError, or core::SynthesisError.
  const Artifacts& artifacts();

  /// Stand up the configured backend, seeded and with the fault plan
  /// applied, without running any periods yet.
  [[nodiscard]] ExperimentRun launch();

  /// The one-call pipeline: launch, advance spec().periods, finish.
  [[nodiscard]] ExperimentResult run();

 private:
  friend class ExperimentRun;

  ExperimentRun launch_impl();

  ScenarioSpec spec_;
  std::optional<Resolved> resolved_;
  std::optional<Artifacts> artifacts_;
};

}  // namespace deproto::api
