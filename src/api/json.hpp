#pragma once

// Minimal hand-rolled JSON value type for the experiment facade: enough to
// serialize ScenarioSpec and ExperimentResult without a new dependency.
// Objects preserve insertion order, so dumps are deterministic and diffable.
// Numbers are doubles; integers round-trip exactly up to 2^53. The number
// encoding is canonical -- semantically equal values dump identical bytes
// (negative zero prints as "0", non-finite values as null) -- because
// compact dumps double as content-addressed cache keys
// (api/result_cache.hpp).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <string>
#include <utility>
#include <vector>

namespace deproto::api {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object, Raw };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  /// Default: null.
  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json number(double v);
  /// Integral convenience overload (counts, ids, seeds); exact up to 2^53.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  static Json number(T v) {
    return number(static_cast<double>(v));
  }
  static Json string(std::string v);
  static Json array();
  static Json object();
  /// Serialization-only splice node: dump() emits `json_text` verbatim in
  /// place of a value. The caller owns the invariant that the text is one
  /// complete canonical JSON value -- nothing validates it. This is how
  /// the dist tier forwards multi-megabyte result documents between
  /// processes (and streams series columns) without re-parsing them into
  /// trees: build the small enclosing object normally and set() the big
  /// value as raw text. Raw nodes never come out of parse(), and every
  /// typed accessor throws on them.
  static Json raw(std::string json_text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }
  [[nodiscard]] bool is_raw() const noexcept { return type_ == Type::Raw; }

  /// Typed accessors; throw JsonError when the type does not match.
  /// Exception: as_number() on null returns NaN (null is how non-finite
  /// doubles serialize), so one bad metric never aborts a whole parse.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::size_t as_size() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& elements() const;
  [[nodiscard]] const Object& items() const;

  /// Object lookup: `contains`, throwing `at`, and defaulted getters used
  /// by from_json so omitted keys mean "keep the default".
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] double get_or(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_or(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;

  /// Object mutation: sets (or replaces) `key`.
  Json& set(std::string key, Json value);
  /// Array mutation: appends.
  Json& push(Json value);

  [[nodiscard]] std::size_t size() const;

  /// Serialize. indent < 0: compact one-liner; otherwise pretty-printed
  /// with `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws JsonError with a byte offset
  /// on malformed input.
  static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// The canonical number encoding used by Json::dump (integers without a
/// decimal point, %.17g otherwise, -0 as "0", non-finite as "null"),
/// exposed so streaming serializers (dist workers emitting series columns
/// point by point) produce bytes identical to a tree-built dump.
[[nodiscard]] std::string json_number_text(double v);

/// Population-count vectors appear in both spec and result documents;
/// shared codec so the two serializations cannot diverge.
inline Json json_from_counts(const std::vector<std::size_t>& counts) {
  Json arr = Json::array();
  for (const std::size_t c : counts) arr.push(Json::number(c));
  return arr;
}

inline std::vector<std::size_t> counts_from_json(const Json& arr) {
  std::vector<std::size_t> counts;
  counts.reserve(arr.elements().size());
  for (const Json& e : arr.elements()) counts.push_back(e.as_size());
  return counts;
}

}  // namespace deproto::api
