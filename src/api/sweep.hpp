#pragma once

// Declarative parameter sweeps: the second tier of the experiment facade.
// Every figure in the paper is a sweep -- over N, failure fraction, churn
// rate, initial seeds -- so a SweepSpec describes a *family* of runs: one
// base ScenarioSpec plus axes (spec fields with value lists, combined as a
// grid or zipped), and a replicate count whose per-replicate seeds are
// derived deterministically via sim::Rng stream splitting. expand() turns
// the spec into a flat, deterministically ordered job list; SuiteRunner
// (api/suite_runner.hpp) executes it on a worker pool.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/json.hpp"
#include "api/spec.hpp"

namespace deproto::api {

struct ExperimentResult;  // api/experiment.hpp
struct SweepResult;       // api/suite_runner.hpp

/// How the axes combine into sweep points. Grid takes the cartesian
/// product (first axis outermost / slowest-varying); Zip walks all axes in
/// lockstep (every axis must have the same length).
enum class SweepMode { Grid, Zip };

[[nodiscard]] const char* sweep_mode_name(SweepMode mode);
[[nodiscard]] SweepMode sweep_mode_from_name(const std::string& name);

/// One sweep dimension: a ScenarioSpec field (dotted path, see
/// sweep_axis_fields()) and the values it takes. Values are Json so one
/// axis type covers numbers ("n", "synthesis.p"), strings ("backend") and
/// booleans ("faults.churn.enabled").
struct SweepAxis {
  std::string field;
  std::vector<Json> values;

  friend bool operator==(const SweepAxis&, const SweepAxis&) = default;
};

/// The coordinates of one sweep point: (field, value) per axis, in axis
/// order.
using SweepCoords = std::vector<std::pair<std::string, Json>>;

/// One expanded job: a fully concrete ScenarioSpec plus where it sits in
/// the sweep. Jobs are ordered point-major (point 0 replicate 0, point 0
/// replicate 1, ..., point 1 replicate 0, ...), and that order is the
/// determinism contract: results are reported by job index regardless of
/// how many threads execute them.
struct SweepJob {
  std::size_t index = 0;      // position in the expanded job list
  std::size_t point = 0;      // sweep-point index (axis combination)
  std::size_t replicate = 0;  // replicate index within the point
  SweepCoords coords;
  ScenarioSpec spec;
};

struct SweepSpec {
  std::string name;
  std::string description;
  ScenarioSpec base;
  SweepMode mode = SweepMode::Grid;
  std::vector<SweepAxis> axes;  // empty means one point: the base spec
  /// Runs per sweep point. Replicate 0 keeps the point's own seed (so a
  /// one-replicate sweep point reproduces a direct Experiment run);
  /// replicate r > 0 runs with replicate_seed(point_seed, r).
  std::size_t replicates = 1;

  /// Points = grid product / zip length; throws SpecError on an empty or
  /// mismatched axis.
  [[nodiscard]] std::size_t point_count() const;
  /// point_count() * replicates.
  [[nodiscard]] std::size_t job_count() const;
  /// The flat job list, in the deterministic point-major order above.
  /// Throws SpecError on unknown axis fields or unappliable values.
  [[nodiscard]] std::vector<SweepJob> expand() const;

  [[nodiscard]] Json to_json() const;
  static SweepSpec from_json(const Json& j);

  friend bool operator==(const SweepSpec&, const SweepSpec&) = default;
};

/// Every field path a SweepAxis may name, for --list style discovery and
/// error messages. Setting "n" rescales initial_counts proportionally
/// (ScenarioSpec::scaled_to); "source.params[K]" and
/// "faults.massive_failures[K].{time,fraction}" index into the base
/// spec's existing entries.
[[nodiscard]] std::vector<std::string> sweep_axis_fields();

/// Set one axis field on a spec. Throws SpecError for unknown fields,
/// out-of-range indices, or type mismatches.
void apply_axis_value(ScenarioSpec& spec, const std::string& field,
                      const Json& value);

/// Compact rendering of one coordinate value for labels and job names
/// ("25000", "0.2", "event"); numbers use %.12g, unlike the full-precision
/// %.17g of Json::dump.
[[nodiscard]] std::string sweep_value_label(const Json& value);

/// The per-replicate seed derivation: replicate 0 keeps `base_seed`;
/// replicate r > 0 draws from sim::Rng(base_seed).split(r), so replicate
/// streams are decorrelated but fully determined by (base_seed, r).
[[nodiscard]] std::uint64_t replicate_seed(std::uint64_t base_seed,
                                           std::size_t replicate);

/// Adaptive sweep starter: where a fixed SweepAxis samples a value list,
/// bisection *finds* the value where a verdict flips -- e.g. the churn
/// rate beyond which the convergence verdict fails -- to a chosen
/// resolution in O(log(range / tolerance)) runs instead of a dense grid.
struct BisectOptions {
  double lo = 0.0;  // predicate is expected to hold here
  double hi = 1.0;  // ... and to fail here
  /// Midpoint evaluations after the two endpoint checks.
  std::size_t max_iterations = 20;
  /// Stop early once hi - lo <= tolerance (0 = iterate to max_iterations).
  double tolerance = 0.0;
};

struct BisectResult {
  double lo = 0.0;         // largest value where the predicate held
  double hi = 0.0;         // smallest value where it failed
  double threshold = 0.0;  // midpoint of the final [lo, hi] bracket
  std::size_t evaluations = 0;  // predicate calls, endpoints included
  /// True when the endpoints bracketed a flip (held at lo, failed at hi);
  /// false means the predicate is one-sided over [lo, hi] and threshold
  /// just reports the surviving endpoint.
  bool bracketed = false;
};

/// Bisect `holds` (assumed monotone: true on [lo, threshold), false on
/// (threshold, hi]) down to the options' resolution. Throws SpecError
/// when options.lo > options.hi or either bound is non-finite.
[[nodiscard]] BisectResult bisect_axis(
    const std::function<bool(double)>& holds, const BisectOptions& options);

/// Experiment-driven bisection: applies each candidate value to `field`
/// of `base` (apply_axis_value), runs the experiment, and feeds the
/// result to `predicate`. Axis values ride through apply_axis_value, so
/// any numeric sweep_axis_fields() entry works ("n" included -- values
/// round through the Json number path).
[[nodiscard]] BisectResult bisect_axis_threshold(
    const ScenarioSpec& base, const std::string& field,
    const std::function<bool(const ExperimentResult&)>& predicate,
    const BisectOptions& options);

/// Seed a bisect bracket from an already-run sweep instead of starting
/// cold: scan `result`'s per-point aggregates for points whose coords set
/// `field` to a number, call a point "holding" when the mean of `metric`
/// (the "absorbed" replicate fraction by default) is >= hold_above, and
/// return the tightest [largest holding value, smallest failing value]
/// bracket for bisect_axis_threshold to refine. nullopt when the field
/// never appears as a numeric coordinate, the verdict is one-sided over
/// the grid (nothing to refine), or the grid is non-monotone in `field`
/// (a failing value below a holding one -- e.g. the verdict also depends
/// on another axis), so a seeded bracket would not actually bracket.
/// max_iterations / tolerance are left at their defaults for the caller.
[[nodiscard]] std::optional<BisectOptions> bracket_from_sweep(
    const SweepResult& result, const std::string& field,
    const std::string& metric = "absorbed", double hold_above = 0.5);

}  // namespace deproto::api
