#include "api/spec.hpp"

#include <algorithm>
#include <cmath>

#include "ode/catalog.hpp"
#include "ode/parser.hpp"

namespace deproto::api {

namespace {

double param_or(const std::vector<double>& params, std::size_t index,
                double fallback) {
  return index < params.size() ? params[index] : fallback;
}

/// Spec documents are inputs, not measurements: a non-finite number (an
/// explicit null, which reads back as NaN) is a configuration error and
/// fails loudly here -- unlike result documents, where null metrics
/// degrade field by field. Also keeps NaN out of canonical spec JSON, so
/// cache keys only ever address finite, distinguishable specs.
double finite(double v, const char* field) {
  if (!std::isfinite(v)) {
    throw SpecError(std::string(field) + ": must be a finite number");
  }
  return v;
}

Json synthesis_to_json(const core::SynthesisOptions& o) {
  Json j = Json::object();
  if (o.p.has_value()) j.set("p", Json::number(*o.p));
  j.set("failure_rate", Json::number(o.failure_rate));
  j.set("allow_tokenizing", Json::boolean(o.allow_tokenizing));
  j.set("auto_rewrite", Json::boolean(o.auto_rewrite));
  j.set("slack_name", Json::string(o.slack_name));
  if (!o.push_pull.empty()) {
    Json pairs = Json::array();
    for (const core::PushPullSpec& s : o.push_pull) {
      pairs.push(Json::object()
                     .set("x", Json::string(s.state_x))
                     .set("y", Json::string(s.state_y)));
    }
    j.set("push_pull", std::move(pairs));
  }
  return j;
}

core::SynthesisOptions synthesis_from_json(const Json& j) {
  core::SynthesisOptions o;
  if (j.contains("p")) o.p = finite(j.at("p").as_number(), "synthesis.p");
  o.failure_rate = finite(j.get_or("failure_rate", o.failure_rate),
                          "synthesis.failure_rate");
  o.allow_tokenizing = j.get_or("allow_tokenizing", o.allow_tokenizing);
  o.auto_rewrite = j.get_or("auto_rewrite", o.auto_rewrite);
  o.slack_name = j.get_or("slack_name", o.slack_name);
  if (j.contains("push_pull")) {
    for (const Json& e : j.at("push_pull").elements()) {
      o.push_pull.push_back(core::PushPullSpec{e.at("x").as_string(),
                                               e.at("y").as_string()});
    }
  }
  return o;
}

Json runtime_to_json(const sim::RuntimeOptions& o) {
  Json j = Json::object();
  j.set("message_loss", Json::number(o.message_loss));
  j.set("token_mode",
        Json::string(o.tokens.mode == sim::TokenRouting::Mode::Directory
                         ? "directory"
                         : "random_walk_ttl"));
  j.set("token_ttl", Json::number(static_cast<double>(o.tokens.ttl)));
  j.set("simultaneous_updates", Json::boolean(o.simultaneous_updates));
  // Only serialized when enabled, keeping the cache keys of every spec
  // that predates the static verifier byte-stable.
  if (o.verify_static) j.set("verify_static", Json::boolean(true));
  if (o.verify_exact) j.set("verify_exact", Json::boolean(true));
  return j;
}

sim::RuntimeOptions runtime_from_json(const Json& j) {
  sim::RuntimeOptions o;
  o.message_loss = finite(j.get_or("message_loss", o.message_loss),
                          "runtime.message_loss");
  // Probabilities are validated here, at parse time, so a bad sweep axis
  // value fails before any backend is stood up (the backends' own checks
  // would catch it later, but mid-launch and with a vaguer message).
  if (o.message_loss < 0.0 || o.message_loss > 1.0) {
    throw SpecError("runtime.message_loss: must lie in [0, 1], got " +
                    std::to_string(o.message_loss));
  }
  const std::string mode = j.get_or("token_mode", std::string("directory"));
  if (mode == "directory") {
    o.tokens.mode = sim::TokenRouting::Mode::Directory;
  } else if (mode == "random_walk_ttl") {
    o.tokens.mode = sim::TokenRouting::Mode::RandomWalkTtl;
  } else {
    throw SpecError("unknown token_mode: " + mode);
  }
  if (j.contains("token_ttl")) {
    // as_size rejects null/NaN/fractions before the narrowing cast (a
    // raw static_cast<unsigned> of NaN would be undefined behavior).
    o.tokens.ttl = static_cast<unsigned>(j.at("token_ttl").as_size());
  }
  o.simultaneous_updates =
      j.get_or("simultaneous_updates", o.simultaneous_updates);
  o.verify_static = j.get_or("verify_static", o.verify_static);
  o.verify_exact = j.get_or("verify_exact", o.verify_exact);
  return o;
}

Json network_to_json(const NetworkSpec& o) {
  Json j = Json::object();
  j.set("latency_min", Json::number(o.latency_min));
  j.set("latency_max", Json::number(o.latency_max));
  j.set("period_ms", Json::number(o.period_ms));
  j.set("probe_timeout", Json::number(o.probe_timeout));
  return j;
}

NetworkSpec network_from_json(const Json& j) {
  NetworkSpec o;
  o.latency_min =
      finite(j.get_or("latency_min", o.latency_min), "network.latency_min");
  o.latency_max =
      finite(j.get_or("latency_max", o.latency_max), "network.latency_max");
  o.period_ms =
      finite(j.get_or("period_ms", o.period_ms), "network.period_ms");
  o.probe_timeout = finite(j.get_or("probe_timeout", o.probe_timeout),
                           "network.probe_timeout");
  if (o.latency_min < 0.0) {
    throw SpecError("network.latency_min: must be >= 0, got " +
                    std::to_string(o.latency_min));
  }
  if (o.latency_min > o.latency_max) {
    throw SpecError("network.latency_min (" + std::to_string(o.latency_min) +
                    ") must not exceed latency_max (" +
                    std::to_string(o.latency_max) + ")");
  }
  if (o.period_ms <= 0.0) {
    throw SpecError("network.period_ms: must be positive, got " +
                    std::to_string(o.period_ms));
  }
  if (o.probe_timeout <= 0.0) {
    throw SpecError("network.probe_timeout: must be positive, got " +
                    std::to_string(o.probe_timeout));
  }
  return o;
}

Json faults_to_json(const FaultPlan& f) {
  Json j = Json::object();
  if (!f.massive_failures.empty()) {
    Json arr = Json::array();
    for (const sim::MassiveFailure& m : f.massive_failures) {
      arr.push(Json::object()
                   .set("time", Json::number(m.time))
                   .set("fraction", Json::number(m.fraction)));
    }
    j.set("massive_failures", std::move(arr));
  }
  if (f.crash_recovery.crash_prob > 0.0) {
    j.set("crash_recovery",
          Json::object()
              .set("crash_prob", Json::number(f.crash_recovery.crash_prob))
              .set("mean_downtime_periods",
                   Json::number(f.crash_recovery.mean_downtime_periods)));
  }
  if (f.churn.enabled) {
    j.set("churn",
          Json::object()
              .set("hours", Json::number(f.churn.hours))
              .set("min_rate", Json::number(f.churn.min_rate))
              .set("max_rate", Json::number(f.churn.max_rate))
              .set("mean_downtime_hours",
                   Json::number(f.churn.mean_downtime_hours))
              .set("seed", Json::number(f.churn.seed))
              .set("periods_per_hour",
                   Json::number(f.churn.periods_per_hour)));
  }
  return j;
}

FaultPlan faults_from_json(const Json& j) {
  FaultPlan f;
  if (j.contains("massive_failures")) {
    for (const Json& e : j.at("massive_failures").elements()) {
      // "period" is the pre-unification key (whole periods only); specs
      // saved by older builds still load.
      const double time = e.contains("time") ? e.at("time").as_number()
                                             : e.at("period").as_number();
      f.massive_failures.push_back(sim::MassiveFailure{
          finite(time, "massive_failures.time"),
          finite(e.at("fraction").as_number(), "massive_failures.fraction")});
    }
  }
  if (j.contains("crash_recovery")) {
    const Json& cr = j.at("crash_recovery");
    f.crash_recovery.crash_prob =
        finite(cr.get_or("crash_prob", 0.0), "crash_recovery.crash_prob");
    f.crash_recovery.mean_downtime_periods =
        finite(cr.get_or("mean_downtime_periods", 0.0),
               "crash_recovery.mean_downtime_periods");
  }
  if (j.contains("churn")) {
    const Json& ch = j.at("churn");
    f.churn.enabled = true;
    f.churn.hours = finite(ch.get_or("hours", f.churn.hours), "churn.hours");
    f.churn.min_rate =
        finite(ch.get_or("min_rate", f.churn.min_rate), "churn.min_rate");
    f.churn.max_rate =
        finite(ch.get_or("max_rate", f.churn.max_rate), "churn.max_rate");
    f.churn.mean_downtime_hours =
        finite(ch.get_or("mean_downtime_hours", f.churn.mean_downtime_hours),
               "churn.mean_downtime_hours");
    if (ch.contains("seed")) f.churn.seed = ch.at("seed").as_u64();
    f.churn.periods_per_hour =
        finite(ch.get_or("periods_per_hour", f.churn.periods_per_hour),
               "churn.periods_per_hour");
  }
  return f;
}

}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::Sync:
      return "sync";
    case Backend::Event:
      return "event";
    case Backend::Count:
      return "count";
    case Backend::Net:
      return "net";
    case Backend::Auto:
      return "auto";
  }
  return "sync";  // unreachable
}

Backend backend_from_name(const std::string& name) {
  if (name == "sync") return Backend::Sync;
  if (name == "event") return Backend::Event;
  if (name == "count") return Backend::Count;
  if (name == "net") return Backend::Net;
  if (name == "auto") return Backend::Auto;
  throw SpecError("unknown backend: " + name +
                  " (want sync | event | count | net | auto)");
}

Backend resolve_backend(Backend backend, std::size_t n) {
  if (backend != Backend::Auto) return backend;
  return n >= kAutoBackendCrossoverN ? Backend::Count : Backend::Sync;
}

std::vector<std::string> catalog_source_ids() {
  return {"epidemic",  "endemic",    "lv",         "lv-original",
          "sir",       "logistic",   "invitation", "constant-flow"};
}

ode::EquationSystem ScenarioSpec::resolve_source() const {
  if (!source.catalog.empty() && !source.ode_text.empty()) {
    throw SpecError("source: give either a catalog id or ODE text, not both");
  }
  if (!source.ode_text.empty()) return ode::parse_system(source.ode_text);
  const std::string& id = source.catalog;
  const std::vector<double>& a = source.params;
  if (id == "epidemic") return ode::catalog::epidemic();
  if (id == "endemic") {
    return ode::catalog::endemic(param_or(a, 0, 4.0), param_or(a, 1, 1.0),
                                 param_or(a, 2, 0.1));
  }
  if (id == "lv") return ode::catalog::lv_partitionable();
  if (id == "lv-original") return ode::catalog::lv_original();
  if (id == "sir") {
    return ode::catalog::sir(param_or(a, 0, 0.5), param_or(a, 1, 0.1));
  }
  if (id == "logistic") return ode::catalog::logistic(param_or(a, 0, 0.7));
  if (id == "invitation") {
    return ode::catalog::invitation(param_or(a, 0, 0.1));
  }
  if (id == "constant-flow") {
    return ode::catalog::constant_flow(param_or(a, 0, 0.05));
  }
  if (id.empty()) throw SpecError("source: empty (no catalog id, no text)");
  throw SpecError("unknown catalog id: " + id);
}

ScenarioSpec ScenarioSpec::scaled_to(std::size_t new_n) const {
  ScenarioSpec scaled = *this;
  scaled.n = new_n;
  if (!initial_counts.empty() && n > 0) {
    const double ratio =
        static_cast<double>(new_n) / static_cast<double>(n);
    std::size_t assigned = 0;
    scaled.initial_counts.clear();
    for (const std::size_t c : initial_counts) {
      std::size_t v = static_cast<std::size_t>(
          std::llround(static_cast<double>(c) * ratio));
      if (c > 0 && v == 0) v = 1;  // keep seeded states populated
      scaled.initial_counts.push_back(v);
      assigned += v;
    }
    // Rounding overshoot comes out of the largest entry that can spare a
    // process without emptying a seeded state (entries pinned to 1 stay
    // at 1). Unsatisfiable only when new_n < the number of nonzero
    // states; then the largest entries give way after all.
    while (assigned > new_n) {
      auto it = scaled.initial_counts.end();
      for (auto cur = scaled.initial_counts.begin();
           cur != scaled.initial_counts.end(); ++cur) {
        if (*cur > 1 && (it == scaled.initial_counts.end() || *cur > *it)) {
          it = cur;
        }
      }
      if (it == scaled.initial_counts.end()) {
        it = std::max_element(scaled.initial_counts.begin(),
                              scaled.initial_counts.end());
        if (*it == 0) break;  // nothing left to take
      }
      --*it;
      --assigned;
    }
    // Rounding undershoot tops up the largest entry (closest to the
    // intended proportions); without this, seed_states would silently
    // leave the shortfall in state 0.
    while (assigned < new_n) {
      ++*std::max_element(scaled.initial_counts.begin(),
                          scaled.initial_counts.end());
      ++assigned;
    }
  }
  return scaled;
}

Json ScenarioSpec::to_json() const {
  Json j = Json::object();
  if (!name.empty()) j.set("name", Json::string(name));
  if (!description.empty()) j.set("description", Json::string(description));
  Json src = Json::object();
  if (!source.catalog.empty()) {
    src.set("catalog", Json::string(source.catalog));
    if (!source.params.empty()) {
      Json params = Json::array();
      for (const double p : source.params) params.push(Json::number(p));
      src.set("params", std::move(params));
    }
  } else {
    src.set("ode", Json::string(source.ode_text));
  }
  j.set("source", std::move(src));
  j.set("synthesis", synthesis_to_json(synthesis));
  j.set("runtime", runtime_to_json(runtime));
  j.set("backend", Json::string(backend_name(backend)));
  if (backend == Backend::Event || backend == Backend::Net) {
    j.set("clock_drift", Json::number(clock_drift));
  }
  if (network != NetworkSpec{}) j.set("network", network_to_json(network));
  j.set("n", Json::number(n));
  j.set("periods", Json::number(periods));
  j.set("seed", Json::number(seed));
  if (!initial_counts.empty()) {
    j.set("initial_counts", json_from_counts(initial_counts));
  }
  if (faults.any()) j.set("faults", faults_to_json(faults));
  if (!lint_suppress.empty()) {
    Json arr = Json::array();
    for (const std::string& rule : lint_suppress) {
      arr.push(Json::string(rule));
    }
    j.set("lint_suppress", std::move(arr));
  }
  return j;
}

ScenarioSpec ScenarioSpec::from_json(const Json& j) {
  ScenarioSpec spec;
  spec.name = j.get_or("name", spec.name);
  spec.description = j.get_or("description", spec.description);
  if (j.contains("source")) {
    const Json& src = j.at("source");
    spec.source.catalog = src.get_or("catalog", std::string());
    spec.source.ode_text = src.get_or("ode", std::string());
    if (src.contains("params")) {
      for (const Json& e : src.at("params").elements()) {
        spec.source.params.push_back(finite(e.as_number(), "source.params"));
      }
    }
  }
  if (j.contains("synthesis")) {
    spec.synthesis = synthesis_from_json(j.at("synthesis"));
  }
  if (j.contains("runtime")) {
    spec.runtime = runtime_from_json(j.at("runtime"));
  }
  spec.backend =
      backend_from_name(j.get_or("backend", std::string("sync")));
  spec.clock_drift =
      finite(j.get_or("clock_drift", spec.clock_drift), "clock_drift");
  if (j.contains("network")) {
    spec.network = network_from_json(j.at("network"));
  }
  if (j.contains("n")) spec.n = j.at("n").as_size();
  if (j.contains("periods")) spec.periods = j.at("periods").as_size();
  if (j.contains("seed")) spec.seed = j.at("seed").as_u64();
  if (j.contains("initial_counts")) {
    spec.initial_counts = counts_from_json(j.at("initial_counts"));
  }
  if (j.contains("faults")) spec.faults = faults_from_json(j.at("faults"));
  if (j.contains("lint_suppress")) {
    for (const Json& e : j.at("lint_suppress").elements()) {
      spec.lint_suppress.push_back(e.as_string());
    }
  }
  return spec;
}

}  // namespace deproto::api
