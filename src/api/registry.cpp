#include "api/registry.hpp"

#include <cstddef>
#include <initializer_list>
#include <utility>

namespace deproto::api {

namespace {

ScenarioSpec epidemic_base() {
  ScenarioSpec spec;
  spec.name = "epidemic";
  spec.description =
      "Eq. (0) pull epidemic: one infective converts 10,000 processes in "
      "O(log N) periods (the quickstart experiment)";
  spec.source.catalog = "epidemic";
  spec.n = 10000;
  spec.periods = 26;
  spec.seed = 2004;
  spec.initial_counts = {9999, 1};
  return spec;
}

ScenarioSpec endemic_base() {
  ScenarioSpec spec;
  spec.name = "endemic";
  spec.description =
      "Eq. (1) endemic replication (Figure 1 push-pull variant, beta=4, "
      "gamma=0.2, alpha=0.05): the stash population self-stabilizes";
  spec.source.catalog = "endemic";
  spec.source.params = {4.0, 0.2, 0.05};
  spec.synthesis.push_pull.push_back(core::PushPullSpec{"x", "y"});
  spec.n = 5000;
  spec.periods = 300;
  spec.seed = 21;
  // Near eq. (2): x* = gamma/beta = 0.05, y* = (1-x*)/(1+gamma/alpha) = 0.19.
  spec.initial_counts = {250, 950, 3800};
  return spec;
}

ScenarioSpec lv_base() {
  ScenarioSpec spec;
  spec.name = "lv-majority";
  spec.description =
      "Eq. (7) Lotka-Volterra majority vote (p=0.05): a 60/40 split "
      "converges to the initial majority";
  spec.source.catalog = "lv";
  spec.synthesis.p = 0.05;
  spec.n = 10000;
  spec.periods = 400;
  spec.seed = 1234;
  spec.initial_counts = {6000, 4000, 0};
  return spec;
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> specs;

  specs.push_back(epidemic_base());

  {
    ScenarioSpec spec = epidemic_base();
    spec.name = "epidemic-lossy";
    spec.description =
        "Pull epidemic over a 20% lossy network with Section 3 coin "
        "compensation: same dynamics as the loss-free run";
    spec.synthesis.failure_rate = 0.2;
    spec.runtime.message_loss = 0.2;
    spec.periods = 40;
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = epidemic_base();
    spec.name = "epidemic-event";
    spec.description =
        "Pull epidemic on the fully asynchronous event backend: per-process "
        "clocks with 5% drift, 5% message loss, no global rounds";
    spec.backend = Backend::Event;
    spec.clock_drift = 0.05;
    spec.runtime.message_loss = 0.05;
    spec.n = 2000;
    spec.periods = 30;
    spec.seed = 7;
    spec.initial_counts = {1999, 1};
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = epidemic_base();
    spec.name = "epidemic-net";
    spec.description =
        "Pull epidemic over real UDP sockets on loopback: 128 nodes, one "
        "socket each, probes as datagrams, loss/RTT measured not simulated";
    spec.backend = Backend::Net;
    spec.n = 128;
    spec.periods = 24;
    spec.seed = 7;
    spec.initial_counts = {127, 1};
    spec.network.period_ms = 10.0;  // ~0.25 s of wall clock per run
    // Short periods shrink the probe deadline to a few ms; on a loaded CI
    // host that reads as loss. Two periods of grace keeps the run honest.
    spec.network.probe_timeout = 2.0;
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = epidemic_base();
    spec.name = "epidemic-count";
    spec.description =
        "The pull epidemic at N = 10^6 on the count backend: one infective "
        "converts a million processes in O(states) work per period";
    spec.backend = Backend::Count;
    spec.n = 1000000;
    spec.periods = 32;
    spec.initial_counts = {999999, 1};
    specs.push_back(std::move(spec));
  }

  specs.push_back(lv_base());

  {
    ScenarioSpec spec = lv_base();
    spec.name = "lv-majority-count";
    spec.description =
        "Figure 11 at gigascale: LV majority vote with N = 10^6 on the "
        "count backend, a 60/40 split converging in seconds";
    spec.backend = Backend::Count;
    spec.n = 1000000;
    spec.initial_counts = {600000, 400000, 0};
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = lv_base();
    spec.name = "lv-majority-net";
    spec.description =
        "LV majority vote over real loopback UDP: a 60/40 split of 128 "
        "gossiping sockets converges to the initial majority";
    spec.backend = Backend::Net;
    spec.n = 128;
    spec.periods = 150;
    spec.seed = 1234;
    spec.initial_counts = {77, 51, 0};
    spec.network.period_ms = 5.0;  // ~0.75 s of wall clock per run
    spec.network.probe_timeout = 2.0;
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = lv_base();
    spec.name = "lv-majority-failure";
    spec.description =
        "LV majority vote losing half the group at period 100 (Figure 12): "
        "the surviving majority still wins";
    spec.faults.massive_failures.push_back(sim::MassiveFailure{100, 0.5});
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = lv_base();
    spec.name = "lv-majority-failure-event";
    spec.description =
        "Figure 12's massive failure replayed asynchronously: drifting "
        "clocks, real messages, half the group crashes at t=100";
    spec.backend = Backend::Event;
    spec.runtime.message_loss = 0.02;
    spec.n = 2000;
    spec.periods = 300;
    spec.seed = 97;
    spec.initial_counts = {1200, 800, 0};
    spec.faults.massive_failures.push_back(sim::MassiveFailure{100, 0.5});
    specs.push_back(std::move(spec));
  }

  specs.push_back(endemic_base());

  {
    ScenarioSpec spec = endemic_base();
    spec.name = "endemic-net";
    spec.description =
        "Endemic replication over real loopback UDP: push-pull datagrams "
        "hold the stash population at the eq. (2) equilibrium";
    spec.backend = Backend::Net;
    spec.n = 128;
    spec.periods = 150;
    spec.seed = 21;
    spec.initial_counts = {7, 24, 97};
    spec.network.period_ms = 5.0;  // ~0.75 s of wall clock per run
    spec.network.probe_timeout = 2.0;
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = endemic_base();
    spec.name = "endemic-massive-failure";
    spec.description =
        "Endemic replication losing 50% of all processes at period 150 "
        "(Figure 5): the stash population recovers to equilibrium";
    spec.faults.massive_failures.push_back(sim::MassiveFailure{150, 0.5});
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = endemic_base();
    spec.name = "endemic-massive-failure-event";
    spec.description =
        "Figure 5's massive failure on the event backend: the stash "
        "population re-stabilizes with no global rounds";
    spec.backend = Backend::Event;
    spec.n = 2000;
    spec.periods = 300;
    spec.seed = 23;
    spec.initial_counts = {100, 380, 1520};
    spec.faults.massive_failures.push_back(sim::MassiveFailure{150, 0.5});
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = endemic_base();
    spec.name = "endemic-massive-failure-count";
    spec.description =
        "Figure 5's massive failure at N = 10^6 on the count backend: "
        "half a million anonymous crashes, equilibrium recovery in seconds";
    spec.backend = Backend::Count;
    spec.n = 1000000;
    spec.initial_counts = {50000, 190000, 760000};
    spec.faults.massive_failures.push_back(sim::MassiveFailure{150, 0.5});
    // The whole point of this scenario is faults on the count backend;
    // the anonymous-victim approximation the verifier warns about is the
    // accepted trade (tests pin its accuracy against the sync backend).
    spec.lint_suppress = {"spec.count-anonymous-faults"};
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = endemic_base();
    spec.name = "endemic-crash-recovery";
    spec.description =
        "Endemic replication under background crash-recovery: 1% of hosts "
        "crash per period, exponential downtime with mean 10 periods";
    spec.faults.crash_recovery.crash_prob = 0.01;
    spec.faults.crash_recovery.mean_downtime_periods = 10.0;
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = endemic_base();
    spec.name = "endemic-crash-recovery-event";
    spec.description =
        "The same background crash-recovery process driven by event-time "
        "timers on the asynchronous backend";
    spec.backend = Backend::Event;
    spec.n = 2000;
    spec.periods = 300;
    spec.seed = 29;
    spec.initial_counts = {100, 380, 1520};
    spec.faults.crash_recovery.crash_prob = 0.01;
    spec.faults.crash_recovery.mean_downtime_periods = 10.0;
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = endemic_base();
    spec.name = "endemic-churn";
    spec.description =
        "Endemic replication under synthetic Overnet churn (Figures 9-10): "
        "5-15% hourly churn, 10 periods per hour, 30 hours";
    spec.faults.churn.enabled = true;
    spec.faults.churn.hours = 30.0;
    spec.faults.churn.min_rate = 0.05;
    spec.faults.churn.max_rate = 0.15;
    spec.faults.churn.mean_downtime_hours = 0.5;
    spec.faults.churn.seed = 7;
    spec.faults.churn.periods_per_hour = 10.0;
    specs.push_back(std::move(spec));
  }

  {
    ScenarioSpec spec = endemic_base();
    spec.name = "endemic-churn-event";
    spec.description =
        "The Overnet churn trace played back in event time (Figures 9-10 "
        "asynchronously): departures and rejoins at fractional periods";
    spec.backend = Backend::Event;
    spec.n = 2000;
    spec.periods = 300;
    spec.seed = 31;
    spec.initial_counts = {100, 380, 1520};
    spec.faults.churn.enabled = true;
    spec.faults.churn.hours = 30.0;
    spec.faults.churn.min_rate = 0.05;
    spec.faults.churn.max_rate = 0.15;
    spec.faults.churn.mean_downtime_hours = 0.5;
    spec.faults.churn.seed = 7;
    spec.faults.churn.periods_per_hour = 10.0;
    specs.push_back(std::move(spec));
  }

  return specs;
}

const std::vector<ScenarioSpec>& registry() {
  static const std::vector<ScenarioSpec> specs = build_registry();
  return specs;
}

std::vector<Json> axis_values(std::initializer_list<double> values) {
  std::vector<Json> out;
  for (const double v : values) out.push_back(Json::number(v));
  return out;
}

std::vector<SweepSpec> build_sweep_registry() {
  std::vector<SweepSpec> sweeps;

  {
    // Figure 7: analysis accuracy vs N. Seeds zipped with N (seed 7 + N,
    // matching the historical bench wiring) so each point is its own
    // independent run of the b = 2 endemic system.
    SweepSpec sweep;
    sweep.name = "fig7-accuracy-vs-n";
    sweep.description =
        "Figure 7 accuracy-vs-N: endemic (b=2, gamma=0.1, alpha=0.001) at "
        "N in {12500..100000}; measured equilibrium vs eq. (2)";
    ScenarioSpec base;
    base.name = "fig7-endemic";
    base.source.catalog = "endemic";
    base.source.params = {4.0, 0.1, 0.001};
    base.synthesis.push_pull.push_back(core::PushPullSpec{"x", "y"});
    base.n = 12500;
    base.periods = 2200;  // 200 warmup + the paper's 2000-period window
    base.seed = 7 + 12500;
    // Seed at the eq. (2) equilibrium: x* = gamma/beta, y* = (1 - x*) /
    // (1 + gamma/alpha); scaled_to keeps the proportions along the N axis.
    const double x_star = 0.1 / 4.0;
    const double y_star = (1.0 - x_star) / (1.0 + 0.1 / 0.001);
    const auto rx = static_cast<std::size_t>(x_star * 12500.0);
    const auto sy = static_cast<std::size_t>(y_star * 12500.0);
    base.initial_counts = {rx, sy, 12500 - rx - sy};
    sweep.base = std::move(base);
    sweep.mode = SweepMode::Zip;
    sweep.axes.push_back(
        SweepAxis{"n", axis_values({12500, 25000, 50000, 100000})});
    sweep.axes.push_back(
        SweepAxis{"seed", axis_values({12507, 25007, 50007, 100007})});
    sweep.replicates = 1;
    sweeps.push_back(std::move(sweep));
  }

  {
    // Figure 11: LV majority convergence vs N (p = 0.01, 60/40 split).
    SweepSpec sweep;
    sweep.name = "fig11-convergence-vs-n";
    sweep.description =
        "Figure 11 convergence-vs-N: LV majority (p=0.01, 60/40 split) at "
        "N in {10000..100000}, 3 replicates per point";
    ScenarioSpec base;
    base.name = "fig11-lv";
    base.source.catalog = "lv";
    base.synthesis.p = 0.01;
    base.n = 10000;
    base.periods = 1000;
    base.seed = 11;
    base.initial_counts = {6000, 4000, 0};
    sweep.base = std::move(base);
    sweep.axes.push_back(
        SweepAxis{"n", axis_values({10000, 20000, 50000, 100000})});
    sweep.replicates = 3;
    sweeps.push_back(std::move(sweep));
  }

  {
    // Figures 9-10: endemic replication as the hourly churn rate climbs.
    // min/max churn rates move together (zipped), keeping the synthetic
    // Overnet band 10 points wide.
    SweepSpec sweep;
    sweep.name = "fig9-10-churn-rate";
    sweep.description =
        "Figures 9-10 churn-rate sweep: endemic replication under "
        "5-15% .. 15-25% hourly churn, 3 replicates per point";
    sweep.base = registry_get("endemic-churn");
    sweep.mode = SweepMode::Zip;
    sweep.axes.push_back(
        SweepAxis{"faults.churn.min_rate", axis_values({0.05, 0.10, 0.15})});
    sweep.axes.push_back(
        SweepAxis{"faults.churn.max_rate", axis_values({0.15, 0.20, 0.25})});
    sweep.replicates = 3;
    sweeps.push_back(std::move(sweep));
  }

  {
    // The CI-sized preset: small epidemic runs across N and both
    // backends. tools/CMakeLists.txt runs it with --threads 2 as the
    // sweep smoke test.
    SweepSpec sweep;
    sweep.name = "smoke-epidemic-scaling";
    sweep.description =
        "CI smoke sweep: the pull epidemic at N in {200, 300} on both "
        "backends, 2 replicates (8 quick jobs)";
    sweep.base = registry_get("epidemic").scaled_to(300);
    sweep.base.periods = 12;
    sweep.axes.push_back(SweepAxis{"n", axis_values({200, 300})});
    {
      SweepAxis backend;
      backend.field = "backend";
      backend.values.push_back(Json::string("sync"));
      backend.values.push_back(Json::string("event"));
      sweep.axes.push_back(std::move(backend));
    }
    sweep.replicates = 2;
    sweeps.push_back(std::move(sweep));
  }

  return sweeps;
}

const std::vector<SweepSpec>& sweep_registry() {
  static const std::vector<SweepSpec> sweeps = build_sweep_registry();
  return sweeps;
}

}  // namespace

std::vector<std::string> registry_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const ScenarioSpec& spec : registry()) names.push_back(spec.name);
  return names;
}

const ScenarioSpec* registry_find(const std::string& name) {
  for (const ScenarioSpec& spec : registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

ScenarioSpec registry_get(const std::string& name) {
  if (const ScenarioSpec* spec = registry_find(name)) return *spec;
  throw SpecError("unknown scenario: " + name +
                  " (deproto-run --list shows the registry)");
}

std::vector<std::string> sweep_registry_names() {
  std::vector<std::string> names;
  names.reserve(sweep_registry().size());
  for (const SweepSpec& sweep : sweep_registry()) {
    names.push_back(sweep.name);
  }
  return names;
}

const SweepSpec* sweep_registry_find(const std::string& name) {
  for (const SweepSpec& sweep : sweep_registry()) {
    if (sweep.name == name) return &sweep;
  }
  return nullptr;
}

SweepSpec sweep_registry_get(const std::string& name) {
  if (const SweepSpec* sweep = sweep_registry_find(name)) return *sweep;
  throw SpecError("unknown sweep preset: " + name +
                  " (deproto-run --list shows the presets)");
}

}  // namespace deproto::api
