#pragma once

// Declarative experiment descriptions: everything the paper's pipeline
// needs -- a source equation system (ODE text or a catalog id), synthesis
// and runtime options, a simulation backend with N/seed/periods, initial
// state seeding, and a fault plan -- in one serializable value. Experiment
// (api/experiment.hpp) is the single entry point that executes a spec;
// the registry (api/registry.hpp) pre-registers the paper's scenarios.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/json.hpp"
#include "core/synthesis.hpp"
#include "ode/equation_system.hpp"
#include "sim/runtime.hpp"
#include "sim/simulator.hpp"

namespace deproto::api {

/// Thrown when a spec cannot be resolved or executed (unknown catalog id,
/// malformed JSON shape, simulator-level validation failures).
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Where the source equations come from. Exactly one of `catalog` /
/// `ode_text` is non-empty; catalog entries take positional parameters
/// (e.g. endemic's beta, gamma, alpha) with catalog defaults when omitted.
struct SourceSpec {
  std::string catalog;          // id from api::catalog_source_ids()
  std::vector<double> params;   // catalog constructor parameters
  std::string ode_text;         // parser grammar (see ode/parser.hpp)

  friend bool operator==(const SourceSpec&, const SourceSpec&) = default;
};

/// Synthetic Overnet-style churn attachment; mirrors
/// sim::ChurnTrace::synthetic_overnet plus the hours -> periods conversion.
struct ChurnSpec {
  bool enabled = false;
  double hours = 0.0;
  double min_rate = 0.05;
  double max_rate = 0.15;
  double mean_downtime_hours = 0.5;
  std::uint64_t seed = 7;
  double periods_per_hour = 10.0;

  friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

/// Background crash-recovery failures; mirrors
/// sim::Simulator::set_crash_recovery.
struct CrashRecoverySpec {
  double crash_prob = 0.0;
  double mean_downtime_periods = 0.0;

  friend bool operator==(const CrashRecoverySpec&,
                         const CrashRecoverySpec&) = default;
};

/// The unified fault plan: scheduled massive failures, background
/// crash-recovery, and churn-trace attachment. Every field is valid on
/// both backends (sim::Simulator is the single scheduling surface).
struct FaultPlan {
  std::vector<sim::MassiveFailure> massive_failures;
  CrashRecoverySpec crash_recovery;
  ChurnSpec churn;

  [[nodiscard]] bool any() const {
    return !massive_failures.empty() || crash_recovery.crash_prob > 0.0 ||
           churn.enabled;
  }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Execution backend: per-node round-synchronous (Sync), per-node fully
/// asynchronous (Event), count-based O(states)-per-period (Count),
/// real UDP sockets on loopback (Net, one socket per node -- capped at
/// net::NetSimulator::kMaxNodes), or Auto, which resolves at launch to
/// Count when n >= kAutoBackendCrossoverN and to Sync below it.
enum class Backend { Sync, Event, Count, Net, Auto };

/// Auto crossover: below this N the per-node sync backend is cheap and
/// exact; at or above it the count backend's O(states) periods win and
/// its O(1/N) approximations are negligible.
inline constexpr std::size_t kAutoBackendCrossoverN = 100000;

[[nodiscard]] const char* backend_name(Backend backend);
[[nodiscard]] Backend backend_from_name(const std::string& name);

/// The backend an Auto spec with population `n` launches on; non-Auto
/// backends pass through unchanged.
[[nodiscard]] Backend resolve_backend(Backend backend, std::size_t n);

/// Network model knobs, validated at spec-parse time. The latency band
/// feeds the event backend's synthetic sim::Network; period_ms and
/// probe_timeout pace the net backend's real-socket runtime. Serialized
/// as a "network" object only when it differs from the defaults, so
/// existing spec JSON (and cache keys) are untouched.
struct NetworkSpec {
  double latency_min = 0.02;   // event backend, in periods
  double latency_max = 0.10;   // event backend, in periods
  double period_ms = 20.0;     // net backend: wall-clock ms per period
  double probe_timeout = 0.5;  // net backend: loss deadline, in periods

  friend bool operator==(const NetworkSpec&, const NetworkSpec&) = default;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  SourceSpec source;
  core::SynthesisOptions synthesis;
  sim::RuntimeOptions runtime;
  Backend backend = Backend::Sync;
  /// Event and net backends: per-process clock drift.
  double clock_drift = 0.05;
  /// Event and net backends: latency band / real-socket pacing.
  NetworkSpec network;
  std::size_t n = 1000;
  std::size_t periods = 100;
  std::uint64_t seed = 1;
  /// counts[s] processes start in machine state s; empty means an even
  /// spread of n / num_states per state (remainder in state 0).
  std::vector<std::size_t> initial_counts;
  FaultPlan faults;
  /// Rule ids (exact match, e.g. "spec.count-anonymous-faults") whose
  /// warning/info findings the static verifier drops for this scenario.
  /// Error-severity findings are never suppressible: a suppression mutes
  /// a judgement call, not a broken machine. Serialized only when
  /// non-empty so cache keys of untouched specs stay byte-stable.
  std::vector<std::string> lint_suppress;

  /// Build the source equation system (catalog lookup or text parse).
  /// Throws SpecError / ode::ParseError.
  [[nodiscard]] ode::EquationSystem resolve_source() const;

  /// Copy with n rescaled and initial_counts scaled proportionally
  /// (nonzero entries stay nonzero; the remainder lands in state 0).
  [[nodiscard]] ScenarioSpec scaled_to(std::size_t new_n) const;

  [[nodiscard]] Json to_json() const;
  static ScenarioSpec from_json(const Json& j);

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Catalog ids accepted by SourceSpec::catalog, with their parameter
/// counts documented in api/spec.cpp (epidemic, endemic, lv, lv-original,
/// sir, logistic, invitation, constant-flow).
[[nodiscard]] std::vector<std::string> catalog_source_ids();

}  // namespace deproto::api
