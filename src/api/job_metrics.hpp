#pragma once

// The fixed per-job metric vector shared by every consumer that folds
// replicates into aggregates: SuiteRunner extracts it after each in-process
// job, the cache memoizes it next to the result dump so warm replays skip
// the body parse, and dispatch workers ship it in result-frame headers so
// the dispatcher aggregates sweeps without ever parsing a result body.
// One definition, because per-point aggregation and the cross-process
// determinism contract both assume every replicate of a point yields the
// same key sequence.

#include <string>
#include <utility>
#include <vector>

#include "api/experiment.hpp"
#include "api/json.hpp"

namespace deproto::api::detail {

/// The metric vector (name, value) extracted from one successful result,
/// in a fixed deterministic order: settle_time, dominant_fraction,
/// absorbed, final_alive, final_fraction_<state>..., probes_total,
/// tokens_*, messages_*. Never reads result.series, so it works on
/// streamed results whose series was handed to a sink instead of retained.
[[nodiscard]] std::vector<std::pair<std::string, double>> result_metrics(
    const ExperimentResult& result);

/// The vector as an insertion-ordered JSON object (the wire/cache form).
/// Round-trips through metrics_from_json preserving order and values.
[[nodiscard]] Json metrics_to_json(
    const std::vector<std::pair<std::string, double>>& metrics);
[[nodiscard]] std::vector<std::pair<std::string, double>> metrics_from_json(
    const Json& j);

}  // namespace deproto::api::detail
