#include "api/sweep.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "api/experiment.hpp"
#include "api/suite_runner.hpp"
#include "sim/rng.hpp"

namespace deproto::api {

namespace {

/// Splits "prefix[K].suffix" into (K, suffix) when `field` starts with
/// `prefix` + '['; returns false otherwise. The suffix excludes the dot.
bool parse_indexed(const std::string& field, const std::string& prefix,
                   std::size_t* index, std::string* suffix) {
  if (field.size() <= prefix.size() + 1 ||
      field.compare(0, prefix.size(), prefix) != 0 ||
      field[prefix.size()] != '[') {
    return false;
  }
  const std::size_t close = field.find(']', prefix.size() + 1);
  if (close == std::string::npos) {
    throw SpecError("sweep axis: malformed index in field: " + field);
  }
  const std::string digits =
      field.substr(prefix.size() + 1, close - prefix.size() - 1);
  if (digits.empty()) {
    throw SpecError("sweep axis: empty index in field: " + field);
  }
  char* end = nullptr;
  *index = std::strtoull(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw SpecError("sweep axis: bad index '" + digits +
                    "' in field: " + field);
  }
  if (close + 1 < field.size()) {
    if (field[close + 1] != '.') {
      throw SpecError("sweep axis: expected '.' after ']' in field: " +
                      field);
    }
    *suffix = field.substr(close + 2);
  } else {
    suffix->clear();
  }
  return true;
}

std::string job_name(const SweepSpec& sweep, const SweepJob& job) {
  std::string name = sweep.base.name.empty() ? sweep.name : sweep.base.name;
  for (const auto& [field, value] : job.coords) {
    name += "/" + field + "=" + sweep_value_label(value);
  }
  if (sweep.replicates > 1) {
    name += "/r" + std::to_string(job.replicate);
  }
  return name;
}

}  // namespace

std::string sweep_value_label(const Json& value) {
  if (value.is_string()) return value.as_string();
  if (value.is_number()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", value.as_number());
    return buf;
  }
  return value.dump();
}

const char* sweep_mode_name(SweepMode mode) {
  return mode == SweepMode::Grid ? "grid" : "zip";
}

SweepMode sweep_mode_from_name(const std::string& name) {
  if (name == "grid") return SweepMode::Grid;
  if (name == "zip") return SweepMode::Zip;
  throw SpecError("unknown sweep mode: " + name + " (want grid | zip)");
}

std::vector<std::string> sweep_axis_fields() {
  return {
      "n",
      "periods",
      "seed",
      "backend",
      "clock_drift",
      "source.params[K]",
      "synthesis.p",
      "synthesis.failure_rate",
      "runtime.message_loss",
      "runtime.token_ttl",
      "faults.massive_failures[K].time",
      "faults.massive_failures[K].fraction",
      "faults.crash_recovery.crash_prob",
      "faults.crash_recovery.mean_downtime_periods",
      "faults.churn.enabled",
      "faults.churn.hours",
      "faults.churn.min_rate",
      "faults.churn.max_rate",
      "faults.churn.mean_downtime_hours",
      "faults.churn.seed",
      "faults.churn.periods_per_hour",
  };
}

void apply_axis_value(ScenarioSpec& spec, const std::string& field,
                      const Json& value) {
  // null reads as NaN through as_number (the non-finite encoding), and a
  // non-finite number would flow into the spec only to dump as null --
  // making distinct specs alias under one cache key and emitting JSON
  // that spec parsing (which rejects null numerics) cannot re-load.
  if (value.is_null() ||
      (value.is_number() && !std::isfinite(value.as_number()))) {
    throw SpecError("axis " + field + ": value must be finite, not null");
  }
  try {
    std::size_t k = 0;
    std::string rest;
    if (field == "n") {
      spec = spec.scaled_to(value.as_size());
    } else if (field == "periods") {
      spec.periods = value.as_size();
    } else if (field == "seed") {
      spec.seed = value.as_u64();
    } else if (field == "backend") {
      spec.backend = backend_from_name(value.as_string());
    } else if (field == "clock_drift") {
      spec.clock_drift = value.as_number();
    } else if (parse_indexed(field, "source.params", &k, &rest)) {
      if (!rest.empty()) {
        throw SpecError("sweep axis: unexpected suffix ." + rest);
      }
      if (k >= spec.source.params.size()) {
        throw SpecError("sweep axis: source.params[" + std::to_string(k) +
                        "] out of range (base spec lists " +
                        std::to_string(spec.source.params.size()) +
                        " params; give explicit base params to sweep one)");
      }
      spec.source.params[k] = value.as_number();
    } else if (field == "synthesis.p") {
      spec.synthesis.p = value.as_number();
    } else if (field == "synthesis.failure_rate") {
      spec.synthesis.failure_rate = value.as_number();
    } else if (field == "runtime.message_loss") {
      spec.runtime.message_loss = value.as_number();
    } else if (field == "runtime.token_ttl") {
      spec.runtime.tokens.ttl = static_cast<unsigned>(value.as_size());
    } else if (parse_indexed(field, "faults.massive_failures", &k, &rest)) {
      if (k >= spec.faults.massive_failures.size()) {
        throw SpecError("sweep axis: faults.massive_failures[" +
                        std::to_string(k) +
                        "] out of range (base spec schedules " +
                        std::to_string(spec.faults.massive_failures.size()) +
                        ")");
      }
      if (rest == "time") {
        spec.faults.massive_failures[k].time = value.as_number();
      } else if (rest == "fraction") {
        spec.faults.massive_failures[k].fraction = value.as_number();
      } else {
        throw SpecError("sweep axis: unknown massive_failures field ." +
                        rest + " (want .time | .fraction)");
      }
    } else if (field == "faults.crash_recovery.crash_prob") {
      spec.faults.crash_recovery.crash_prob = value.as_number();
    } else if (field == "faults.crash_recovery.mean_downtime_periods") {
      spec.faults.crash_recovery.mean_downtime_periods = value.as_number();
    } else if (field == "faults.churn.enabled") {
      spec.faults.churn.enabled = value.as_bool();
    } else if (field == "faults.churn.hours") {
      spec.faults.churn.hours = value.as_number();
    } else if (field == "faults.churn.min_rate") {
      spec.faults.churn.min_rate = value.as_number();
    } else if (field == "faults.churn.max_rate") {
      spec.faults.churn.max_rate = value.as_number();
    } else if (field == "faults.churn.mean_downtime_hours") {
      spec.faults.churn.mean_downtime_hours = value.as_number();
    } else if (field == "faults.churn.seed") {
      spec.faults.churn.seed = value.as_u64();
    } else if (field == "faults.churn.periods_per_hour") {
      spec.faults.churn.periods_per_hour = value.as_number();
    } else {
      std::string known;
      for (const std::string& f : sweep_axis_fields()) {
        known += known.empty() ? f : ", " + f;
      }
      throw SpecError("unknown sweep axis field: " + field + " (known: " +
                      known + ")");
    }
  } catch (const JsonError& e) {
    throw SpecError("sweep axis " + field + ": " + e.what());
  }
}

std::uint64_t replicate_seed(std::uint64_t base_seed, std::size_t replicate) {
  if (replicate == 0) return base_seed;
  sim::Rng stream = sim::Rng(base_seed).split(replicate);
  // Clamp derived seeds to 53 bits: specs travel as JSON (cache keys, the
  // dispatch wire protocol), whose numbers are doubles that are only exact
  // up to 2^53. A full-width seed would silently round in transit, so an
  // out-of-process worker would simulate a different replicate than the
  // in-process engine.
  return stream.engine()() & ((std::uint64_t{1} << 53) - 1);
}

std::size_t SweepSpec::point_count() const {
  if (axes.empty()) return 1;
  std::size_t points = mode == SweepMode::Grid ? 1 : axes.front().values.size();
  for (const SweepAxis& axis : axes) {
    if (axis.values.empty()) {
      throw SpecError("sweep axis " + axis.field + " has no values");
    }
    for (const SweepAxis& other : axes) {
      if (&other == &axis) break;
      if (other.field == axis.field) {
        throw SpecError("sweep axis " + axis.field +
                        " listed twice (values would double-apply)");
      }
    }
    if (mode == SweepMode::Grid) {
      points *= axis.values.size();
    } else if (axis.values.size() != points) {
      throw SpecError("zip sweep: axis " + axis.field + " has " +
                      std::to_string(axis.values.size()) + " values, axis " +
                      axes.front().field + " has " + std::to_string(points));
    }
  }
  return points;
}

std::size_t SweepSpec::job_count() const {
  if (replicates == 0) {
    throw SpecError("sweep " + name + ": replicates must be >= 1");
  }
  return point_count() * replicates;
}

std::vector<SweepJob> SweepSpec::expand() const {
  const std::size_t points = point_count();
  if (replicates == 0) {
    throw SpecError("sweep " + name + ": replicates must be >= 1");
  }

  // Grid strides: first axis outermost (slowest-varying), so the job list
  // reads like the equivalent nested for loops.
  std::vector<std::size_t> stride(axes.size(), 1);
  if (mode == SweepMode::Grid) {
    for (std::size_t a = axes.size(); a-- > 1;) {
      stride[a - 1] = stride[a] * axes[a].values.size();
    }
  }

  std::vector<SweepJob> jobs;
  jobs.reserve(points * replicates);
  for (std::size_t p = 0; p < points; ++p) {
    ScenarioSpec point_spec = base;
    SweepCoords coords;
    coords.reserve(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const std::size_t v =
          mode == SweepMode::Grid ? (p / stride[a]) % axes[a].values.size()
                                  : p;
      apply_axis_value(point_spec, axes[a].field, axes[a].values[v]);
      coords.emplace_back(axes[a].field, axes[a].values[v]);
    }
    for (std::size_t r = 0; r < replicates; ++r) {
      SweepJob job;
      job.index = jobs.size();
      job.point = p;
      job.replicate = r;
      job.coords = coords;
      job.spec = point_spec;
      job.spec.seed = replicate_seed(point_spec.seed, r);
      job.spec.name = job_name(*this, job);
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

Json SweepSpec::to_json() const {
  Json j = Json::object();
  if (!name.empty()) j.set("name", Json::string(name));
  if (!description.empty()) j.set("description", Json::string(description));
  j.set("base", base.to_json());
  j.set("mode", Json::string(sweep_mode_name(mode)));
  Json axis_arr = Json::array();
  for (const SweepAxis& axis : axes) {
    Json values = Json::array();
    for (const Json& v : axis.values) values.push(v);
    axis_arr.push(Json::object()
                      .set("field", Json::string(axis.field))
                      .set("values", std::move(values)));
  }
  j.set("axes", std::move(axis_arr));
  j.set("replicates", Json::number(replicates));
  return j;
}

SweepSpec SweepSpec::from_json(const Json& j) {
  SweepSpec sweep;
  sweep.name = j.get_or("name", sweep.name);
  sweep.description = j.get_or("description", sweep.description);
  if (j.contains("base")) sweep.base = ScenarioSpec::from_json(j.at("base"));
  sweep.mode =
      sweep_mode_from_name(j.get_or("mode", std::string("grid")));
  if (j.contains("axes")) {
    for (const Json& e : j.at("axes").elements()) {
      SweepAxis axis;
      axis.field = e.at("field").as_string();
      for (const Json& v : e.at("values").elements()) {
        axis.values.push_back(v);
      }
      sweep.axes.push_back(std::move(axis));
    }
  }
  if (j.contains("replicates")) {
    sweep.replicates = j.at("replicates").as_size();
  }
  return sweep;
}

BisectResult bisect_axis(const std::function<bool(double)>& holds,
                         const BisectOptions& options) {
  if (!std::isfinite(options.lo) || !std::isfinite(options.hi) ||
      options.lo > options.hi) {
    throw SpecError("bisect_axis: want finite lo <= hi");
  }
  BisectResult result;
  result.lo = options.lo;
  result.hi = options.hi;
  const bool held_lo = holds(options.lo);
  ++result.evaluations;
  const bool held_hi = holds(options.hi);
  ++result.evaluations;
  if (!held_lo || held_hi) {
    // One-sided: no flip inside [lo, hi]. Report the surviving endpoint
    // (hi when the predicate never failed, lo when it never held).
    result.threshold = held_hi ? options.hi : options.lo;
    return result;
  }
  result.bracketed = true;
  for (std::size_t i = 0; i < options.max_iterations; ++i) {
    if (result.hi - result.lo <= options.tolerance) break;
    const double mid = result.lo + (result.hi - result.lo) / 2.0;
    if (mid <= result.lo || mid >= result.hi) break;  // float resolution
    if (holds(mid)) {
      result.lo = mid;
    } else {
      result.hi = mid;
    }
    ++result.evaluations;
  }
  result.threshold = result.lo + (result.hi - result.lo) / 2.0;
  return result;
}

BisectResult bisect_axis_threshold(
    const ScenarioSpec& base, const std::string& field,
    const std::function<bool(const ExperimentResult&)>& predicate,
    const BisectOptions& options) {
  return bisect_axis(
      [&](double value) {
        ScenarioSpec spec = base;
        apply_axis_value(spec, field, Json::number(value));
        Experiment experiment(std::move(spec));
        return predicate(experiment.run());
      },
      options);
}

std::optional<BisectOptions> bracket_from_sweep(const SweepResult& result,
                                                const std::string& field,
                                                const std::string& metric,
                                                double hold_above) {
  bool have_hold = false;
  bool have_fail = false;
  double max_hold = 0.0;
  double min_fail = 0.0;
  for (const PointSummary& point : result.points) {
    std::optional<double> value;
    for (const auto& [name, coord] : point.coords) {
      if (name == field && coord.is_number()) value = coord.as_number();
    }
    if (!value.has_value() || !std::isfinite(*value)) continue;
    const Aggregate* aggregate = point.metric(metric);
    if (aggregate == nullptr || aggregate->count == 0) continue;
    if (aggregate->mean >= hold_above) {
      if (!have_hold || *value > max_hold) max_hold = *value;
      have_hold = true;
    } else {
      if (!have_fail || *value < min_fail) min_fail = *value;
      have_fail = true;
    }
  }
  if (!have_hold || !have_fail || max_hold >= min_fail) return std::nullopt;
  BisectOptions options;
  options.lo = max_hold;
  options.hi = min_fail;
  return options;
}

}  // namespace deproto::api
