#include "api/job_metrics.hpp"

namespace deproto::api::detail {

std::vector<std::pair<std::string, double>> result_metrics(
    const ExperimentResult& r) {
  std::vector<std::pair<std::string, double>> m;
  m.emplace_back("settle_time", r.convergence.settle_time);
  m.emplace_back("dominant_fraction", r.convergence.dominant_fraction);
  m.emplace_back("absorbed", r.convergence.absorbed ? 1.0 : 0.0);
  m.emplace_back("final_alive", static_cast<double>(r.final_alive));
  for (std::size_t s = 0; s < r.state_names.size(); ++s) {
    const double fraction =
        r.final_alive == 0 ? 0.0
                           : static_cast<double>(r.final_counts[s]) /
                                 static_cast<double>(r.final_alive);
    m.emplace_back("final_fraction_" + r.state_names[s], fraction);
  }
  m.emplace_back("probes_total", static_cast<double>(r.probes_total));
  m.emplace_back("tokens_generated", static_cast<double>(r.tokens.generated));
  m.emplace_back("tokens_delivered", static_cast<double>(r.tokens.delivered));
  m.emplace_back("tokens_dropped", static_cast<double>(r.tokens.dropped));
  m.emplace_back("messages_sent", static_cast<double>(r.messages_sent));
  m.emplace_back("messages_dropped",
                 static_cast<double>(r.messages_dropped));
  // Dropped / sent: the event backend's synthetic loss rate and the net
  // backend's measured one land in the same column, so a sweep can put a
  // simulated network next to the real loopback one.
  m.emplace_back("loss_rate",
                 r.messages_sent == 0
                     ? 0.0
                     : static_cast<double>(r.messages_dropped) /
                           static_cast<double>(r.messages_sent));
  if (r.net_stats.has_value()) {
    m.emplace_back("observed_loss", r.net_stats->observed_loss());
    m.emplace_back("rtt_ms_mean", r.net_stats->rtt_ms_mean());
    m.emplace_back("reordered", static_cast<double>(r.net_stats->reordered));
    m.emplace_back("duplicates",
                   static_cast<double>(r.net_stats->duplicates));
  }
  return m;
}

Json metrics_to_json(
    const std::vector<std::pair<std::string, double>>& metrics) {
  Json j = Json::object();
  for (const auto& [name, value] : metrics) j.set(name, Json::number(value));
  return j;
}

std::vector<std::pair<std::string, double>> metrics_from_json(const Json& j) {
  std::vector<std::pair<std::string, double>> metrics;
  for (const auto& [name, value] : j.items()) {
    metrics.emplace_back(name, value.as_number());
  }
  return metrics;
}

}  // namespace deproto::api::detail
