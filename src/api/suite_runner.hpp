#pragma once

// SuiteRunner: the parallel, deterministic execution engine behind
// SweepSpec. A sweep expands into a flat job list; a std::thread worker
// pool drains it through an atomic job counter, each job running its own
// api::Experiment (independent RNG state, no shared mutable state in the
// library). Results are reported strictly in job-index order -- the JSONL
// sink, the on_result callback, and every aggregate are byte-identical
// whether the suite ran on 1 thread or 16.
//
//   SweepSpec sweep = sweep_registry_get("fig11-convergence-vs-n");
//   SuiteOptions options;
//   options.threads = 8;
//   const SweepResult result = SuiteRunner(options).run(sweep);
//   std::ofstream("sweep.json") << result.to_json(false).dump(2);
//
// to_json(true) adds a "timing" section (wall-clock, threads, jobs/sec);
// to_json(false) is the canonical deterministic form the regression tests
// compare across thread counts.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "api/experiment.hpp"
#include "api/result_cache.hpp"
#include "api/sweep.hpp"

namespace deproto::api {

/// Mean / population stddev / min / max over the replicates of one sweep
/// point. count == 0 (all replicates failed) leaves every statistic 0.
struct Aggregate {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] static Aggregate of(const std::vector<double>& values);

  [[nodiscard]] Json to_json() const;
  static Aggregate from_json(const Json& j);

  friend bool operator==(const Aggregate&, const Aggregate&) = default;
};

/// Per-point aggregation across replicates. `metrics` holds a fixed,
/// deterministic key set (see suite_runner.cpp): convergence time
/// ("settle_time"), steady-state fractions ("dominant_fraction" and
/// "final_fraction_<state>"), population ("final_alive"), and token /
/// probe / message totals. Wall-clock lives in `elapsed`, separate from
/// `metrics`, so the deterministic serialization never contains timing.
struct PointSummary {
  std::size_t point = 0;
  SweepCoords coords;
  std::size_t replicates = 0;  // that ran successfully
  std::vector<std::pair<std::string, Aggregate>> metrics;
  Aggregate elapsed;  // seconds per replicate (timing; not deterministic)

  /// Lookup by metric name; nullptr when absent.
  [[nodiscard]] const Aggregate* metric(const std::string& name) const;

  friend bool operator==(const PointSummary&, const PointSummary&) = default;
};

/// Multi-process execution: SuiteRunner forks `workers` worker processes
/// (dist::run_dispatched) instead of spawning threads, shards the job
/// list across them with pull scheduling, and merges completions back in
/// strict job-index order -- every sink sees bytes identical to a
/// single-threaded in-process run. Workers that die or stop heartbeating
/// are replaced and their in-flight job reassigned, up to `max_retries`
/// re-dispatches per job before the job is recorded as failed.
struct DispatchOptions {
  /// Worker process count; 0 disables dispatch (the in-process thread
  /// pool runs the suite). Like threads, never changes results.
  std::size_t workers = 0;
  /// Worker executable; it must understand the `--worker` protocol of
  /// tools/deproto-run. Empty means this binary (/proc/self/exe), which
  /// is the CLI case and what the integration tests use.
  std::string worker_exe;
  /// Extra argv appended after "--worker ..." when spawning each worker:
  /// the CLI forwards `--cache <dir>` (and salt/bytes) here so workers
  /// share one memoization directory; tests inject fault-injection flags.
  std::vector<std::string> extra_worker_args;
  /// Interval at which workers emit heartbeat frames; 0 disables them.
  int heartbeat_ms = 500;
  /// Silence (no frame of any kind) after which a busy worker is declared
  /// hung, killed, and its job reassigned. 0 derives a conservative bound
  /// from heartbeat_ms; hang detection is off entirely when heartbeats
  /// are disabled and no explicit timeout is given, so legitimately long
  /// jobs are never killed by default.
  int heartbeat_timeout_ms = 0;
  /// Re-dispatch budget per job: a job abandoned by dying workers this
  /// many times beyond its first attempt is recorded as failed (with the
  /// worker's fate in the error) instead of retried forever.
  int max_retries = 2;
  /// Test hook: observe each spawned worker (slot index, pid) -- the
  /// kill-a-worker integration test aims its SIGKILL through this.
  std::function<void(std::size_t slot, long pid)> on_worker_spawn;
};

/// Dispatcher execution counters, surfaced like CacheStats: environment
/// state (how the run executed), so they serialize under the timing form
/// only and the deterministic document is unchanged by dispatch.
struct DispatchStats {
  std::size_t workers = 0;          ///< configured worker slots
  std::size_t jobs_dispatched = 0;  ///< Job frames sent, retries included
  std::size_t jobs_retried = 0;     ///< dispatches beyond a job's first
  std::size_t jobs_reassigned = 0;  ///< in-flight jobs pulled off dead workers
  std::size_t worker_restarts = 0;  ///< replacement spawns after a death
  std::size_t frames_received = 0;  ///< well-formed frames from workers
  std::vector<double> worker_busy_seconds;  ///< per slot, job wall-clock

  friend bool operator==(const DispatchStats&, const DispatchStats&) = default;
};

/// One executed job: the expanded SweepJob plus its outcome. A throwing
/// job (SpecError, SynthesisError, ...) is captured as `error` and does
/// not abort the suite.
struct JobOutcome {
  SweepJob job;
  bool ok = false;
  std::string error;
  ExperimentResult result;  // valid when ok
  double elapsed_seconds = 0.0;
  /// Replayed from SuiteOptions::cache instead of executed. Cached and
  /// fresh outcomes are indistinguishable to every sink's deterministic
  /// form; the flag only feeds counters and timing-form diagnostics.
  bool cached = false;
};

struct SweepResult {
  std::string sweep;
  std::size_t jobs_total = 0;
  std::size_t jobs_failed = 0;
  /// Every outcome, by job index. When SuiteOptions::store_results is
  /// false the heavy ExperimentResults are dropped after aggregation and
  /// each entry keeps only job identity, ok/error, and timing.
  std::vector<JobOutcome> jobs;
  std::vector<PointSummary> points;
  double elapsed_seconds = 0.0;  // whole-suite wall clock
  std::size_t threads = 1;
  /// Cache accounting for this run (all zero unless cache_enabled). Like
  /// timing, it is environment state -- a warm rerun hits where the cold
  /// run missed -- so it serializes under the "timing" form only and the
  /// deterministic to_json(false) stays byte-identical warm vs cold.
  bool cache_enabled = false;
  CacheStats cache;
  /// Dispatcher accounting for this run (multi-process mode only). Same
  /// contract as cache: timing-form serialization, deterministic form
  /// untouched.
  bool dispatch_enabled = false;
  DispatchStats dispatch;
  /// The JSONL sink reported a write failure (disk full, closed stream):
  /// the file on disk is truncated and must not be trusted. SuiteRunner
  /// flushes the sink before returning so buffered failures surface here
  /// too; the CLI turns this into a nonzero exit status.
  bool jsonl_failed = false;

  [[nodiscard]] double jobs_per_second() const;

  /// Serializes name, totals, per-point aggregates, and failures; per-job
  /// ExperimentResults stream through the JSONL sink instead. With
  /// include_timing, adds a "timing" object (suite wall-clock, threads,
  /// jobs/sec, per-point elapsed aggregates); without it the document is
  /// byte-identical across thread counts and repeated runs. from_json
  /// restores everything serialized (failed outcomes keep identity +
  /// error only), so parse -> re-dump is idempotent.
  [[nodiscard]] Json to_json(bool include_timing = true) const;
  static SweepResult from_json(const Json& j);
};

struct SuiteOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (at
  /// least 1). The thread count never changes results, only wall-clock.
  std::size_t threads = 0;
  /// Keep each job's full ExperimentResult in SweepResult::jobs. Turn off
  /// for long sweeps and stream through `jsonl` instead.
  bool store_results = true;
  /// Streaming sink: one compact JSON line per job, written in job-index
  /// order as the completed prefix grows. Byte-identical across thread
  /// counts (lines carry no timing unless jsonl_timing is set).
  std::ostream* jsonl = nullptr;
  bool jsonl_timing = false;
  /// Progress hook, invoked in job-index order (never concurrently).
  std::function<void(const JobOutcome&)> on_result;
  /// Optional result memoization (non-owning; must outlive the run):
  /// lookup-before-execute, write-through-after. Hits skip the simulation
  /// entirely; every sink sees cached and fresh results identically.
  /// Mutually exclusive with dispatch (an in-process handle cannot cross
  /// the fork; pass the directory via dispatch.extra_worker_args so every
  /// worker opens its own) -- run_jobs throws SpecError on the combination.
  ResultCache* cache = nullptr;
  /// Multi-process mode: when dispatch.workers > 0 the suite forks worker
  /// processes instead of threads (see DispatchOptions). `threads` is
  /// ignored in this mode; everything else -- sinks, ordering, the
  /// deterministic document -- behaves identically.
  DispatchOptions dispatch;
};

class SuiteRunner {
 public:
  explicit SuiteRunner(SuiteOptions options = {});

  /// Expand and execute a sweep. Throws SpecError on expansion errors;
  /// per-job execution errors are captured in the outcomes.
  [[nodiscard]] SweepResult run(const SweepSpec& sweep) const;

  /// Execute a pre-built job list (e.g. deproto-run --smoke's scenario x
  /// backend matrix) under the same engine and ordering contract.
  /// Preconditions (SweepSpec::expand() satisfies both; hand-built lists
  /// must too, and violations throw SpecError): jobs sharing a point id
  /// are contiguous with non-decreasing ids, and produce results of the
  /// same shape (same machine/state set) so replicate metrics align.
  [[nodiscard]] SweepResult run_jobs(std::vector<SweepJob> jobs,
                                     const std::string& suite_name) const;

 private:
  SuiteOptions options_;
};

namespace detail {

// Shared between the in-process engine and the dist tier, so both emit
// bit-identical lines and aggregates. Not API; subject to change with the
// engine.

[[nodiscard]] Json coords_to_json(const SweepCoords& coords);
[[nodiscard]] SweepCoords coords_from_json(const Json& j);

/// One JSONL line for `outcome`. When `raw_result` is non-null (dispatch
/// mode) it is spliced verbatim as the "result" value instead of
/// re-serializing outcome.result -- the text is the worker's canonical
/// to_json(false) dump, so the line is byte-identical to the in-process
/// form without this process ever parsing the body.
[[nodiscard]] Json jsonl_line(const JobOutcome& outcome, bool with_timing,
                              const std::string* raw_result = nullptr);

/// Fold per-job metric vectors into out.points / out.jobs_failed, in job
/// index order (execution-interleaving independent). Requires out.jobs
/// complete and point-contiguous; metrics_by_job[i] holds the vector for
/// successful job i. Throws SpecError on contract violations.
void aggregate_points(
    SweepResult& out,
    const std::vector<std::vector<std::pair<std::string, double>>>&
        metrics_by_job);

}  // namespace detail

}  // namespace deproto::api
