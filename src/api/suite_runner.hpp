#pragma once

// SuiteRunner: the parallel, deterministic execution engine behind
// SweepSpec. A sweep expands into a flat job list; a std::thread worker
// pool drains it through an atomic job counter, each job running its own
// api::Experiment (independent RNG state, no shared mutable state in the
// library). Results are reported strictly in job-index order -- the JSONL
// sink, the on_result callback, and every aggregate are byte-identical
// whether the suite ran on 1 thread or 16.
//
//   SweepSpec sweep = sweep_registry_get("fig11-convergence-vs-n");
//   SuiteOptions options;
//   options.threads = 8;
//   const SweepResult result = SuiteRunner(options).run(sweep);
//   std::ofstream("sweep.json") << result.to_json(false).dump(2);
//
// to_json(true) adds a "timing" section (wall-clock, threads, jobs/sec);
// to_json(false) is the canonical deterministic form the regression tests
// compare across thread counts.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "api/experiment.hpp"
#include "api/result_cache.hpp"
#include "api/sweep.hpp"

namespace deproto::api {

/// Mean / population stddev / min / max over the replicates of one sweep
/// point. count == 0 (all replicates failed) leaves every statistic 0.
struct Aggregate {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] static Aggregate of(const std::vector<double>& values);

  [[nodiscard]] Json to_json() const;
  static Aggregate from_json(const Json& j);

  friend bool operator==(const Aggregate&, const Aggregate&) = default;
};

/// Per-point aggregation across replicates. `metrics` holds a fixed,
/// deterministic key set (see suite_runner.cpp): convergence time
/// ("settle_time"), steady-state fractions ("dominant_fraction" and
/// "final_fraction_<state>"), population ("final_alive"), and token /
/// probe / message totals. Wall-clock lives in `elapsed`, separate from
/// `metrics`, so the deterministic serialization never contains timing.
struct PointSummary {
  std::size_t point = 0;
  SweepCoords coords;
  std::size_t replicates = 0;  // that ran successfully
  std::vector<std::pair<std::string, Aggregate>> metrics;
  Aggregate elapsed;  // seconds per replicate (timing; not deterministic)

  /// Lookup by metric name; nullptr when absent.
  [[nodiscard]] const Aggregate* metric(const std::string& name) const;

  friend bool operator==(const PointSummary&, const PointSummary&) = default;
};

/// One executed job: the expanded SweepJob plus its outcome. A throwing
/// job (SpecError, SynthesisError, ...) is captured as `error` and does
/// not abort the suite.
struct JobOutcome {
  SweepJob job;
  bool ok = false;
  std::string error;
  ExperimentResult result;  // valid when ok
  double elapsed_seconds = 0.0;
  /// Replayed from SuiteOptions::cache instead of executed. Cached and
  /// fresh outcomes are indistinguishable to every sink's deterministic
  /// form; the flag only feeds counters and timing-form diagnostics.
  bool cached = false;
};

struct SweepResult {
  std::string sweep;
  std::size_t jobs_total = 0;
  std::size_t jobs_failed = 0;
  /// Every outcome, by job index. When SuiteOptions::store_results is
  /// false the heavy ExperimentResults are dropped after aggregation and
  /// each entry keeps only job identity, ok/error, and timing.
  std::vector<JobOutcome> jobs;
  std::vector<PointSummary> points;
  double elapsed_seconds = 0.0;  // whole-suite wall clock
  std::size_t threads = 1;
  /// Cache accounting for this run (all zero unless cache_enabled). Like
  /// timing, it is environment state -- a warm rerun hits where the cold
  /// run missed -- so it serializes under the "timing" form only and the
  /// deterministic to_json(false) stays byte-identical warm vs cold.
  bool cache_enabled = false;
  CacheStats cache;
  /// The JSONL sink reported a write failure (disk full, closed stream):
  /// the file on disk is truncated and must not be trusted. SuiteRunner
  /// flushes the sink before returning so buffered failures surface here
  /// too; the CLI turns this into a nonzero exit status.
  bool jsonl_failed = false;

  [[nodiscard]] double jobs_per_second() const;

  /// Serializes name, totals, per-point aggregates, and failures; per-job
  /// ExperimentResults stream through the JSONL sink instead. With
  /// include_timing, adds a "timing" object (suite wall-clock, threads,
  /// jobs/sec, per-point elapsed aggregates); without it the document is
  /// byte-identical across thread counts and repeated runs. from_json
  /// restores everything serialized (failed outcomes keep identity +
  /// error only), so parse -> re-dump is idempotent.
  [[nodiscard]] Json to_json(bool include_timing = true) const;
  static SweepResult from_json(const Json& j);
};

struct SuiteOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (at
  /// least 1). The thread count never changes results, only wall-clock.
  std::size_t threads = 0;
  /// Keep each job's full ExperimentResult in SweepResult::jobs. Turn off
  /// for long sweeps and stream through `jsonl` instead.
  bool store_results = true;
  /// Streaming sink: one compact JSON line per job, written in job-index
  /// order as the completed prefix grows. Byte-identical across thread
  /// counts (lines carry no timing unless jsonl_timing is set).
  std::ostream* jsonl = nullptr;
  bool jsonl_timing = false;
  /// Progress hook, invoked in job-index order (never concurrently).
  std::function<void(const JobOutcome&)> on_result;
  /// Optional result memoization (non-owning; must outlive the run):
  /// lookup-before-execute, write-through-after. Hits skip the simulation
  /// entirely; every sink sees cached and fresh results identically.
  ResultCache* cache = nullptr;
};

class SuiteRunner {
 public:
  explicit SuiteRunner(SuiteOptions options = {});

  /// Expand and execute a sweep. Throws SpecError on expansion errors;
  /// per-job execution errors are captured in the outcomes.
  [[nodiscard]] SweepResult run(const SweepSpec& sweep) const;

  /// Execute a pre-built job list (e.g. deproto-run --smoke's scenario x
  /// backend matrix) under the same engine and ordering contract.
  /// Preconditions (SweepSpec::expand() satisfies both; hand-built lists
  /// must too, and violations throw SpecError): jobs sharing a point id
  /// are contiguous with non-decreasing ids, and produce results of the
  /// same shape (same machine/state set) so replicate metrics align.
  [[nodiscard]] SweepResult run_jobs(std::vector<SweepJob> jobs,
                                     const std::string& suite_name) const;

 private:
  SuiteOptions options_;
};

}  // namespace deproto::api
