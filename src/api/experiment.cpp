#include "api/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "analysis/verifier.hpp"
#include "core/mean_field.hpp"
#include "sim/churn.hpp"
#include "sim/metrics.hpp"

namespace deproto::api {

namespace {

/// Dominant state / fraction / absorption from the final populations; the
/// settle time is filled in separately because the two series
/// representations (vector<PeriodPoint> and the streaming mode's columnar
/// history) walk their points differently.
ConvergenceSummary summarize_final(
    const std::vector<std::size_t>& final_counts, std::size_t final_alive) {
  ConvergenceSummary summary;
  if (final_counts.empty()) return summary;
  std::size_t best = 0;
  for (std::size_t s = 1; s < final_counts.size(); ++s) {
    if (final_counts[s] > final_counts[best]) best = s;
  }
  summary.dominant_state = best;
  summary.dominant_fraction =
      final_alive == 0 ? 0.0
                       : static_cast<double>(final_counts[best]) /
                             static_cast<double>(final_alive);
  summary.absorbed = final_alive > 0 && final_counts[best] == final_alive;
  return summary;
}

/// Start of the longest suffix over which the dominant count stayed within
/// tolerance of its final value. `count_at`/`time_at` abstract the series
/// representation so the streamed and retained paths share one definition
/// (byte-identical summaries are part of the dispatch determinism
/// contract).
template <typename CountAt, typename TimeAt>
void fill_settle_time(ConvergenceSummary& summary, std::size_t points,
                      const CountAt& count_at, const TimeAt& time_at,
                      double final_value) {
  const double tol = std::max(2.0, 0.02 * final_value);
  for (std::size_t i = points; i-- > 0;) {
    if (std::abs(static_cast<double>(count_at(i)) - final_value) > tol) {
      break;
    }
    summary.settle_time = time_at(i);
  }
}

ConvergenceSummary summarize_convergence(
    const std::vector<PeriodPoint>& series,
    const std::vector<std::size_t>& final_counts, std::size_t final_alive) {
  ConvergenceSummary summary = summarize_final(final_counts, final_alive);
  if (final_counts.empty()) return summary;
  const std::size_t best = summary.dominant_state;
  fill_settle_time(
      summary, series.size(),
      [&](std::size_t i) { return series[i].counts[best]; },
      [&](std::size_t i) { return series[i].time; },
      static_cast<double>(final_counts[best]));
  return summary;
}

ConvergenceSummary summarize_convergence_columnar(
    const std::vector<double>& times,
    const std::vector<std::vector<std::size_t>>& count_columns,
    const std::vector<std::size_t>& final_counts, std::size_t final_alive) {
  ConvergenceSummary summary = summarize_final(final_counts, final_alive);
  if (final_counts.empty()) return summary;
  const std::size_t best = summary.dominant_state;
  fill_settle_time(
      summary, times.size(),
      [&](std::size_t i) { return count_columns[best][i]; },
      [&](std::size_t i) { return times[i]; },
      static_cast<double>(final_counts[best]));
  return summary;
}

}  // namespace

const std::vector<std::size_t>& ExperimentResult::counts_at(
    std::size_t period) const {
  if (period == 0) return initial_counts;
  if (period > series.size()) {
    throw std::out_of_range("ExperimentResult::counts_at: period " +
                            std::to_string(period) + " > " +
                            std::to_string(series.size()));
  }
  return series[period - 1].counts;
}

Json ExperimentResult::to_json(bool include_timing) const {
  Json j = Json::object();
  if (!scenario.empty()) j.set("scenario", Json::string(scenario));
  Json names = Json::array();
  for (const std::string& n : state_names) names.push(Json::string(n));
  j.set("state_names", std::move(names));
  j.set("taxonomy",
        Json::object()
            .set("complete", Json::boolean(taxonomy.complete))
            .set("completely_partitionable",
                 Json::boolean(taxonomy.completely_partitionable))
            .set("restricted_polynomial",
                 Json::boolean(taxonomy.restricted_polynomial))
            .set("detail", Json::string(taxonomy.detail)));
  j.set("p", Json::number(p));
  j.set("mean_field_verified", Json::boolean(mean_field_verified));
  Json note_arr = Json::array();
  for (const std::string& n : notes) note_arr.push(Json::string(n));
  j.set("notes", std::move(note_arr));
  j.set("machine", Json::string(machine_text));
  j.set("initial_counts", json_from_counts(initial_counts));
  // Columnar series: one time array plus one population array per state.
  Json time = Json::array();
  Json alive = Json::array();
  std::vector<Json> cols(state_names.size(), Json::array());
  for (const PeriodPoint& point : series) {
    time.push(Json::number(point.time));
    alive.push(Json::number(point.total_alive));
    for (std::size_t s = 0; s < cols.size(); ++s) {
      cols[s].push(Json::number(point.counts[s]));
    }
  }
  Json columns = Json::array();
  for (Json& column : cols) columns.push(std::move(column));
  j.set("series", Json::object()
                      .set("time", std::move(time))
                      .set("alive", std::move(alive))
                      .set("counts", std::move(columns)));
  j.set("final_counts", json_from_counts(final_counts));
  j.set("final_alive", Json::number(final_alive));
  j.set("tokens", Json::object()
                      .set("generated", Json::number(tokens.generated))
                      .set("delivered", Json::number(tokens.delivered))
                      .set("dropped", Json::number(tokens.dropped)));
  j.set("probes_total", Json::number(probes_total));
  j.set("messages_sent", Json::number(messages_sent));
  j.set("messages_dropped", Json::number(messages_dropped));
  if (net_stats.has_value()) {
    const net::NetStats& s = *net_stats;
    j.set("net",
          Json::object()
              .set("datagrams_sent", Json::number(s.datagrams_sent))
              .set("datagrams_received", Json::number(s.datagrams_received))
              .set("emulated_drops", Json::number(s.emulated_drops))
              .set("probes_sent", Json::number(s.probes_sent))
              .set("probe_timeouts", Json::number(s.probe_timeouts))
              .set("observed_loss", Json::number(s.observed_loss()))
              .set("reordered", Json::number(s.reordered))
              .set("duplicates", Json::number(s.duplicates))
              .set("decode_errors", Json::number(s.decode_errors))
              .set("joins", Json::number(s.joins))
              .set("leaves", Json::number(s.leaves))
              .set("rtt_samples", Json::number(s.rtt_samples))
              .set("rtt_ms_min", Json::number(s.rtt_ms_min))
              .set("rtt_ms_max", Json::number(s.rtt_ms_max))
              .set("rtt_ms_mean", Json::number(s.rtt_ms_mean())));
  }
  j.set("convergence",
        Json::object()
            .set("dominant_state", Json::number(convergence.dominant_state))
            .set("dominant_fraction",
                 Json::number(convergence.dominant_fraction))
            .set("absorbed", Json::boolean(convergence.absorbed))
            .set("settle_time", Json::number(convergence.settle_time)));
  if (include_timing && elapsed_seconds > 0.0) {
    j.set("elapsed_seconds", Json::number(elapsed_seconds));
  }
  return j;
}

ExperimentResult ExperimentResult::from_json(const Json& j) {
  ExperimentResult r;
  r.scenario = j.get_or("scenario", std::string());
  for (const Json& e : j.at("state_names").elements()) {
    r.state_names.push_back(e.as_string());
  }
  const Json& tax = j.at("taxonomy");
  r.taxonomy.complete = tax.get_or("complete", false);
  r.taxonomy.completely_partitionable =
      tax.get_or("completely_partitionable", false);
  r.taxonomy.restricted_polynomial =
      tax.get_or("restricted_polynomial", false);
  r.taxonomy.detail = tax.get_or("detail", std::string());
  r.p = j.get_or("p", 1.0);
  r.mean_field_verified = j.get_or("mean_field_verified", false);
  if (j.contains("notes")) {
    for (const Json& e : j.at("notes").elements()) {
      r.notes.push_back(e.as_string());
    }
  }
  r.machine_text = j.get_or("machine", std::string());
  r.initial_counts = counts_from_json(j.at("initial_counts"));
  const Json& series = j.at("series");
  const Json::Array& time = series.at("time").elements();
  const Json::Array& alive = series.at("alive").elements();
  const Json::Array& columns = series.at("counts").elements();
  for (std::size_t i = 0; i < time.size(); ++i) {
    PeriodPoint point;
    point.time = time[i].as_number();
    point.total_alive = alive[i].as_size();
    point.counts.reserve(columns.size());
    for (const Json& column : columns) {
      point.counts.push_back(column.elements().at(i).as_size());
    }
    r.series.push_back(std::move(point));
  }
  r.final_counts = counts_from_json(j.at("final_counts"));
  r.final_alive = j.at("final_alive").as_size();
  if (j.contains("tokens")) {
    const Json& t = j.at("tokens");
    r.tokens.generated = t.at("generated").as_u64();
    r.tokens.delivered = t.at("delivered").as_u64();
    r.tokens.dropped = t.at("dropped").as_u64();
  }
  if (j.contains("probes_total")) {
    r.probes_total = j.at("probes_total").as_u64();
  }
  if (j.contains("messages_sent")) {
    r.messages_sent = j.at("messages_sent").as_u64();
  }
  if (j.contains("messages_dropped")) {
    r.messages_dropped = j.at("messages_dropped").as_u64();
  }
  if (j.contains("net")) {
    const Json& s = j.at("net");
    const auto u64 = [&s](const char* key) -> std::uint64_t {
      return s.contains(key) ? s.at(key).as_u64() : 0;
    };
    net::NetStats stats;
    stats.datagrams_sent = u64("datagrams_sent");
    stats.datagrams_received = u64("datagrams_received");
    stats.emulated_drops = u64("emulated_drops");
    stats.probes_sent = u64("probes_sent");
    stats.probe_timeouts = u64("probe_timeouts");
    stats.reordered = u64("reordered");
    stats.duplicates = u64("duplicates");
    stats.decode_errors = u64("decode_errors");
    stats.joins = u64("joins");
    stats.leaves = u64("leaves");
    stats.rtt_samples = u64("rtt_samples");
    stats.rtt_ms_min = s.get_or("rtt_ms_min", 0.0);
    stats.rtt_ms_max = s.get_or("rtt_ms_max", 0.0);
    // The document carries the mean; the sum reconstructs so a reloaded
    // result reports the same rtt_ms_mean().
    stats.rtt_ms_sum =
        s.get_or("rtt_ms_mean", 0.0) * static_cast<double>(stats.rtt_samples);
    r.net_stats = stats;
  }
  r.elapsed_seconds = j.get_or("elapsed_seconds", 0.0);
  if (j.contains("convergence")) {
    const Json& c = j.at("convergence");
    r.convergence.dominant_state = c.at("dominant_state").as_size();
    r.convergence.dominant_fraction = c.get_or("dominant_fraction", 0.0);
    r.convergence.absorbed = c.get_or("absorbed", false);
    r.convergence.settle_time = c.get_or("settle_time", -1.0);
  }
  return r;
}

Experiment::Experiment(ScenarioSpec spec) : spec_(std::move(spec)) {}

const Experiment::Resolved& Experiment::resolved() {
  if (!resolved_.has_value()) {
    ode::EquationSystem source = spec_.resolve_source();
    ode::TaxonomyReport taxonomy = ode::classify(source);
    resolved_.emplace(Resolved{std::move(source), std::move(taxonomy)});
  }
  return *resolved_;
}

const Experiment::Artifacts& Experiment::artifacts() {
  if (!artifacts_.has_value()) {
    const Resolved& res = resolved();
    core::SynthesisResult synthesis =
        core::synthesize(res.source, spec_.synthesis);
    const bool verified = core::verifies_equivalence(
        synthesis.machine, synthesis.source, spec_.synthesis.failure_rate);
    artifacts_.emplace(Artifacts{res.source, res.taxonomy,
                                 std::move(synthesis), verified});
  }
  return *artifacts_;
}

ExperimentRun::ExperimentRun(Experiment& owner) : owner_(&owner) {}

sim::Group& ExperimentRun::group() {
  if (!simulator_->per_node()) {
    throw SpecError(
        "backend count has no per-node group: per-node-identity features "
        "(group access, host history, token tracing) need backend sync or "
        "event");
  }
  return simulator_->group();
}

ExperimentRun Experiment::launch() {
  try {
    return launch_impl();
  } catch (const std::invalid_argument& e) {
    // Simulator-level validation (seed counts vs n, failure fractions,
    // churn rates) surfaces under the facade's documented error type.
    throw SpecError(e.what());
  }
}

ExperimentRun Experiment::launch_impl() {
  if (spec_.runtime.verify_static || spec_.runtime.verify_exact) {
    // Opt-in pre-flight: refuse to stand up a backend for a machine or
    // spec the static verifier rejects. Warnings and infos pass; they are
    // deproto-lint's concern, not a launch blocker -- with one exception:
    // under verify_exact an exact.transient-trap also blocks, because the
    // explicit-state chain has *proved* the finite population is absorbed
    // somewhere the mean field never predicted, and launching would just
    // reproduce that trap empirically.
    analysis::VerifyOptions vopts;
    vopts.exact = spec_.runtime.verify_exact;
    const analysis::Report lint = analysis::analyze_spec(spec_, vopts);
    std::string msg;
    for (const analysis::Finding& f : lint.findings) {
      const bool blocks =
          f.severity == analysis::Severity::Error ||
          (spec_.runtime.verify_exact && f.rule == "exact.transient-trap");
      if (!blocks) continue;
      msg += "; " + f.rule + " (" + f.location + "): " + f.message;
    }
    if (!msg.empty()) {
      std::string head = spec_.runtime.verify_exact
                             ? "exact verification failed"
                             : "static verification failed";
      if (!spec_.name.empty()) head += " for " + spec_.name;
      throw SpecError(head + msg);
    }
  }
  const Artifacts& art = artifacts();
  const core::ProtocolStateMachine& machine = art.synthesis.machine;
  const std::size_t m = machine.num_states();

  ExperimentRun run(*this);
  // Seeding counts: the spec's, or an even spread of n/m per state. The
  // division remainder is deliberately NOT seeded -- those processes stay
  // in state 0 without a self-transition, exactly like the legacy wiring,
  // so fixed-seed runs stay bit-identical across the refactor.
  std::vector<std::size_t> seed_counts = spec_.initial_counts;
  if (seed_counts.empty()) seed_counts.assign(m, spec_.n / m);
  if (seed_counts.size() > m) {
    throw SpecError("initial_counts has more entries than machine states");
  }

  // Stand up the backend. This is the only backend-specific block: from
  // here on the experiment is programmed purely through sim::Simulator.
  // Backend::Auto resolves here: count at or above the crossover N, sync
  // below it.
  const Backend backend = resolve_backend(spec_.backend, spec_.n);
  if (backend == Backend::Sync) {
    run.executor_ =
        std::make_unique<sim::MachineExecutor>(machine, spec_.runtime);
    run.simulator_ = std::make_unique<sim::SyncSimulator>(
        spec_.n, *run.executor_, spec_.seed);
  } else if (backend == Backend::Event) {
    sim::EventSimOptions options;
    options.network.loss = spec_.runtime.message_loss;
    options.network.latency_min = spec_.network.latency_min;
    options.network.latency_max = spec_.network.latency_max;
    options.clock_drift = spec_.clock_drift;
    options.tokens = spec_.runtime.tokens;
    auto event = std::make_unique<sim::EventSimulator>(
        spec_.n, machine, spec_.seed, options);
    run.event_ = event.get();
    run.simulator_ = std::move(event);
  } else if (backend == Backend::Net) {
    if (spec_.n > net::NetSimulator::kMaxNodes) {
      throw SpecError(
          "backend net binds one real UDP socket per node: n = " +
          std::to_string(spec_.n) + " exceeds the ceiling of " +
          std::to_string(net::NetSimulator::kMaxNodes) +
          "; gigascale populations need backend count (or auto)");
    }
    net::NetSimOptions options;
    options.period_ms = spec_.network.period_ms;
    options.probe_timeout = spec_.network.probe_timeout;
    options.message_loss = spec_.runtime.message_loss;
    options.clock_drift = spec_.clock_drift;
    options.tokens = spec_.runtime.tokens;
    auto net = std::make_unique<net::NetSimulator>(spec_.n, machine,
                                                   spec_.seed, options);
    run.net_ = net.get();
    run.simulator_ = std::move(net);
  } else {
    sim::CountSimOptions options;
    options.message_loss = spec_.runtime.message_loss;
    options.tokens = spec_.runtime.tokens;
    auto count = std::make_unique<sim::CountSimulator>(
        spec_.n, machine, spec_.seed, options);
    run.count_ = count.get();
    run.simulator_ = std::move(count);
  }

  // One scheduling surface for every fault-plan field, on either backend.
  sim::Simulator& simulator = *run.simulator_;
  simulator.seed_states(seed_counts);
  for (const sim::MassiveFailure& f : spec_.faults.massive_failures) {
    simulator.schedule_massive_failure(f.time, f.fraction);
  }
  if (spec_.faults.crash_recovery.crash_prob > 0.0) {
    simulator.set_crash_recovery(
        spec_.faults.crash_recovery.crash_prob,
        spec_.faults.crash_recovery.mean_downtime_periods);
  }
  if (spec_.faults.churn.enabled) {
    const ChurnSpec& churn = spec_.faults.churn;
    sim::Rng churn_rng(churn.seed);
    const sim::ChurnTrace trace = sim::ChurnTrace::synthetic_overnet(
        spec_.n, churn.hours, churn.min_rate, churn.max_rate,
        churn.mean_downtime_hours, churn_rng);
    simulator.attach_churn(trace, churn.periods_per_hour);
  }
  // Report the populations actually materialized (the even-spread
  // remainder lands in state 0). The count accessors are defined on every
  // backend, unlike group().
  run.initial_counts_.clear();
  for (std::size_t s = 0; s < simulator.num_states(); ++s) {
    run.initial_counts_.push_back(simulator.count(s));
  }
  return run;
}

void ExperimentRun::advance(std::size_t periods) {
  simulator_->run_for(static_cast<double>(periods));
  advanced_ += periods;
}

void ExperimentRun::stream_series(
    std::function<void(const PeriodPoint&)> sink) {
  if (advanced_ != 0) {
    throw SpecError(
        "stream_series: must be armed before the first advance() (earlier "
        "periods were already retained)");
  }
  streaming_ = true;
  stream_times_.clear();
  stream_counts_.assign(simulator_->num_states(), {});
  // The event and net simulators additionally sample at t = 0; that point
  // duplicates initial_counts and is skipped, exactly as finish() skips it
  // in the retained path.
  simulator_->metrics().set_sample_sink(
      [this, sink = std::move(sink),
       skip_first = event_ != nullptr || net_ != nullptr](
          const sim::PeriodSample& sample) mutable {
        if (skip_first) {
          skip_first = false;
          return;
        }
        stream_times_.push_back(sample.time);
        for (std::size_t s = 0; s < stream_counts_.size(); ++s) {
          stream_counts_[s].push_back(sample.alive_in_state[s]);
        }
        if (sink) {
          sink(PeriodPoint{sample.time, sample.alive_in_state,
                           sample.total_alive});
        }
      });
}

ExperimentResult ExperimentRun::finish() {
  const Experiment::Artifacts& art = owner_->artifacts();
  const ScenarioSpec& spec = owner_->spec();

  ExperimentResult result;
  result.scenario = spec.name;
  result.state_names = art.synthesis.machine.state_names();
  result.taxonomy = art.taxonomy;
  result.taxonomy.partition.clear();  // witness is not part of the result
  result.p = art.synthesis.p;
  result.mean_field_verified = art.mean_field_verified;
  result.notes = art.synthesis.notes;
  result.machine_text = art.synthesis.machine.to_string();
  result.initial_counts = initial_counts_;

  // One series point per period on every backend. The event and net
  // simulators additionally sample at t = 0; that point duplicates
  // initial_counts, so it is skipped here. In streaming mode every point
  // already went to the sink, so result.series stays empty by design.
  if (!streaming_) {
    const std::vector<sim::PeriodSample>& samples =
        simulator_->metrics().samples();
    for (std::size_t i = (event_ != nullptr || net_ != nullptr ? 1 : 0);
         i < samples.size(); ++i) {
      const sim::PeriodSample& sample = samples[i];
      result.series.push_back(PeriodPoint{sample.time, sample.alive_in_state,
                                          sample.total_alive});
    }
  }

  for (std::size_t s = 0; s < simulator_->num_states(); ++s) {
    result.final_counts.push_back(simulator_->count(s));
  }
  result.final_alive = simulator_->total_alive();

  if (executor_) {
    result.tokens = executor_->token_stats();
    result.probes_total = executor_->probes_total();
  } else if (count_ != nullptr) {
    result.tokens = count_->token_stats();
    result.probes_total = count_->probes_total();
  } else if (net_ != nullptr) {
    const net::NetStats stats = net_->net_stats();
    result.tokens = net_->token_stats();
    result.probes_total = stats.probes_sent;
    // The shared message columns carry the measured equivalents of the
    // event backend's synthetic counters (datagrams that reached the
    // kernel; probes whose reply never arrived), so a sweep can put
    // simulated and real loss side by side. The full measured detail
    // rides in result.net_stats.
    result.messages_sent = stats.datagrams_sent;
    result.messages_dropped = stats.probe_timeouts;
    result.net_stats = stats;
  } else {
    result.messages_sent = event_->network().sent();
    result.messages_dropped = event_->network().dropped();
  }
  result.convergence =
      streaming_ ? summarize_convergence_columnar(stream_times_,
                                                  stream_counts_,
                                                  result.final_counts,
                                                  result.final_alive)
                 : summarize_convergence(result.series, result.final_counts,
                                         result.final_alive);
  return result;
}

ExperimentResult Experiment::run() {
  const auto start = std::chrono::steady_clock::now();
  ExperimentRun active = launch();
  active.advance(spec_.periods);
  ExperimentResult result = active.finish();
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace deproto::api
