#include "api/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace deproto::api {

namespace {

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  static const char* const kNames[] = {"null",   "bool",  "number", "string",
                                       "array",  "object", "raw"};
  throw JsonError(std::string("expected ") + wanted + ", got " +
                  kNames[static_cast<int>(got)]);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // JSON has no NaN/Infinity lexemes. Throwing here would abort
  // serialization of a whole document over one bad metric, after the
  // compute that produced it is already done -- so the canonical encoding
  // maps non-finite values to null (readers see NaN back, field by field).
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // -0.0 == 0.0 but "%.0f" would print "-0": semantically equal documents
  // must dump identical bytes (they are content-addressed cache keys).
  if (v == 0.0) {
    out += '0';
    return;
  }
  char buf[32];
  // Integers in the exactly-representable range print without a decimal
  // point so ids and counts stay readable and round-trip bit-exactly.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json::null();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int k = 0; k < 4; ++k) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return value;
  }

  void append_codepoint(std::string& out, unsigned cp) {
    // Combine a surrogate pair when the low half follows immediately.
    if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    }
    if (cp >= 0xD800 && cp <= 0xDFFF) {
      // A lone surrogate would encode to invalid UTF-8 and make the
      // re-dumped document unreadable by conforming parsers.
      fail("unpaired surrogate");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string lexeme = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(lexeme.c_str(), &end);
    if (end != lexeme.c_str() + lexeme.size()) fail("bad number");
    // strtod saturates overflowing literals ("1e999") to +-infinity; a
    // document can only mean a finite value (non-finite serializes as
    // null), so letting it through would let +inf and -inf alias under
    // the canonical encoding. Reject at the source instead.
    if (!std::isfinite(v)) fail("number out of range");
    return Json::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::Number;
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::String;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

Json Json::raw(std::string json_text) {
  Json j;
  j.type_ = Type::Raw;
  j.string_ = std::move(json_text);
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  // null is the serialized form of a non-finite double (see append_number),
  // so a numeric read of null yields NaN instead of throwing: one NaN
  // metric degrades that field only, never a whole document.
  if (type_ == Type::Null) return std::numeric_limits<double>::quiet_NaN();
  if (type_ != Type::Number) type_error("number", type_);
  return number_;
}

std::uint64_t Json::as_u64() const {
  const double v = as_number();
  // 2^64 as a double; casting anything >= it (or negative) is UB.
  if (v < 0.0 || v != std::floor(v) || v >= 18446744073709551616.0) {
    throw JsonError("expected a non-negative integer below 2^64");
  }
  return static_cast<std::uint64_t>(v);
}

std::size_t Json::as_size() const {
  return static_cast<std::size_t>(as_u64());
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

const Json::Array& Json::elements() const {
  if (type_ != Type::Array) type_error("array", type_);
  return array_;
}

const Json::Object& Json::items() const {
  if (type_ != Type::Object) type_error("object", type_);
  return object_;
}

bool Json::contains(const std::string& key) const {
  for (const auto& [k, v] : items()) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  for (const auto& [k, v] : items()) {
    if (k == key) return v;
  }
  throw JsonError("missing key: " + key);
}

double Json::get_or(const std::string& key, double fallback) const {
  // An explicit null reads as NaN (via as_number), NOT as the fallback:
  // null is the serialized form of NaN, and substituting a finite default
  // would make parse -> re-dump emit different bytes than the original --
  // fatal for cache replays, which must reproduce the cold run exactly.
  return contains(key) ? at(key).as_number() : fallback;
}

bool Json::get_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

std::string Json::get_or(const std::string& key,
                         const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

Json& Json::set(std::string key, Json value) {
  if (type_ != Type::Object) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (type_ != Type::Array) type_error("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  type_error("array or object", type_);
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, number_); break;
    case Type::String: append_escaped(out, string_); break;
    // Spliced verbatim: the caller vouches that the text is one complete
    // JSON value (see Json::raw). Pretty-printing does not re-indent it.
    case Type::Raw: out += string_; break;
    case Type::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ",";
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ",";
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).run();
}

std::string json_number_text(double v) {
  std::string out;
  append_number(out, v);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::Null: return true;
    case Json::Type::Bool: return a.bool_ == b.bool_;
    case Json::Type::Number: return a.number_ == b.number_;
    case Json::Type::String: return a.string_ == b.string_;
    case Json::Type::Array: return a.array_ == b.array_;
    case Json::Type::Object: return a.object_ == b.object_;
    case Json::Type::Raw: return a.string_ == b.string_;
  }
  return false;
}

}  // namespace deproto::api
