#include "api/suite_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>

#include "api/job_metrics.hpp"
#include "dist/dispatcher.hpp"

namespace deproto::api {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

namespace detail {

Json coords_to_json(const SweepCoords& coords) {
  Json j = Json::object();
  for (const auto& [field, value] : coords) j.set(field, value);
  return j;
}

SweepCoords coords_from_json(const Json& j) {
  SweepCoords coords;
  for (const auto& [field, value] : j.items()) {
    coords.emplace_back(field, value);
  }
  return coords;
}

Json jsonl_line(const JobOutcome& outcome, bool with_timing,
                const std::string* raw_result) {
  Json line = Json::object();
  line.set("job", Json::number(outcome.job.index));
  line.set("point", Json::number(outcome.job.point));
  line.set("replicate", Json::number(outcome.job.replicate));
  line.set("scenario", Json::string(outcome.job.spec.name));
  line.set("coords", coords_to_json(outcome.job.coords));
  line.set("ok", Json::boolean(outcome.ok));
  if (outcome.ok) {
    if (raw_result != nullptr && !with_timing) {
      // Dispatch mode: the worker already serialized the deterministic
      // form; splice its bytes instead of re-building the tree.
      line.set("result", Json::raw(*raw_result));
    } else {
      line.set("result", outcome.result.to_json(with_timing));
    }
  } else {
    line.set("error", Json::string(outcome.error));
  }
  // Cache provenance is environment state (warm vs cold), so like timing
  // it never appears in the default byte-identical line format.
  if (with_timing) line.set("cached", Json::boolean(outcome.cached));
  return line;
}

void aggregate_points(
    SweepResult& out,
    const std::vector<std::vector<std::pair<std::string, double>>>&
        metrics_by_job) {
  // Aggregate per point, in job-index order, so floating-point folds are
  // independent of the execution interleaving. The point-contiguity
  // precondition (see the header) is enforced, not assumed: a shuffled
  // job list would otherwise split points into duplicate summaries.
  for (std::size_t i = 0; i < out.jobs.size(); ++i) {
    const JobOutcome& outcome = out.jobs[i];
    if (!outcome.ok) ++out.jobs_failed;
    if (out.points.empty() || out.points.back().point != outcome.job.point) {
      if (!out.points.empty() &&
          outcome.job.point < out.points.back().point) {
        throw SpecError(
            "run_jobs: job list must be point-contiguous (job " +
            std::to_string(i) + " revisits point " +
            std::to_string(outcome.job.point) + ")");
      }
      PointSummary point;
      point.point = outcome.job.point;
      point.coords = outcome.job.coords;
      out.points.push_back(std::move(point));
    }
  }
  // One forward pass folds replicate columns into each point (jobs are
  // point-major contiguous, as the grouping loop above already relies
  // on), keeping aggregation O(jobs) however many points a sweep has.
  std::vector<std::pair<std::string, std::vector<double>>> columns;
  std::vector<double> elapsed;
  std::size_t pi = 0;
  auto finalize_point = [&] {
    PointSummary& point = out.points[pi];
    for (auto& [name, values] : columns) {
      point.metrics.emplace_back(name, Aggregate::of(values));
    }
    point.elapsed = Aggregate::of(elapsed);
    columns.clear();
    elapsed.clear();
  };
  for (std::size_t i = 0; i < out.jobs.size(); ++i) {
    const JobOutcome& outcome = out.jobs[i];
    if (outcome.job.point != out.points[pi].point) {
      finalize_point();
      ++pi;
    }
    elapsed.push_back(outcome.elapsed_seconds);
    if (!outcome.ok) continue;
    ++out.points[pi].replicates;
    const auto& metrics = metrics_by_job[i];
    if (columns.empty()) {
      for (const auto& [name, value] : metrics) {
        columns.emplace_back(name, std::vector<double>{value});
      }
    } else {
      if (metrics.size() != columns.size()) {
        throw SpecError(
            "run_jobs: jobs sharing point " +
            std::to_string(outcome.job.point) +
            " produced different metric sets (specs within a point must "
            "have the same shape)");
      }
      for (std::size_t m = 0; m < metrics.size(); ++m) {
        columns[m].second.push_back(metrics[m].second);
      }
    }
  }
  if (!out.jobs.empty()) finalize_point();
}

}  // namespace detail

Aggregate Aggregate::of(const std::vector<double>& values) {
  Aggregate a;
  a.count = values.size();
  if (values.empty()) return a;
  a.min = values.front();
  a.max = values.front();
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    a.min = std::min(a.min, v);
    a.max = std::max(a.max, v);
  }
  a.mean = sum / static_cast<double>(a.count);
  double sq = 0.0;
  for (const double v : values) sq += (v - a.mean) * (v - a.mean);
  a.stddev = std::sqrt(sq / static_cast<double>(a.count));
  return a;
}

Json Aggregate::to_json() const {
  return Json::object()
      .set("count", Json::number(count))
      .set("mean", Json::number(mean))
      .set("stddev", Json::number(stddev))
      .set("min", Json::number(min))
      .set("max", Json::number(max));
}

Aggregate Aggregate::from_json(const Json& j) {
  Aggregate a;
  a.count = j.at("count").as_size();
  a.mean = j.get_or("mean", 0.0);
  a.stddev = j.get_or("stddev", 0.0);
  a.min = j.get_or("min", 0.0);
  a.max = j.get_or("max", 0.0);
  return a;
}

const Aggregate* PointSummary::metric(const std::string& name) const {
  for (const auto& [key, aggregate] : metrics) {
    if (key == name) return &aggregate;
  }
  return nullptr;
}

double SweepResult::jobs_per_second() const {
  return elapsed_seconds > 0.0
             ? static_cast<double>(jobs_total) / elapsed_seconds
             : 0.0;
}

Json SweepResult::to_json(bool include_timing) const {
  Json j = Json::object();
  if (!sweep.empty()) j.set("sweep", Json::string(sweep));
  j.set("jobs_total", Json::number(jobs_total));
  j.set("jobs_failed", Json::number(jobs_failed));
  Json point_arr = Json::array();
  for (const PointSummary& point : points) {
    Json p = Json::object();
    p.set("point", Json::number(point.point));
    p.set("coords", detail::coords_to_json(point.coords));
    p.set("replicates", Json::number(point.replicates));
    Json metrics = Json::object();
    for (const auto& [name, aggregate] : point.metrics) {
      metrics.set(name, aggregate.to_json());
    }
    p.set("metrics", std::move(metrics));
    point_arr.push(std::move(p));
  }
  j.set("points", std::move(point_arr));
  Json failures = Json::array();
  for (const JobOutcome& outcome : jobs) {
    if (outcome.ok || outcome.error.empty()) continue;
    failures.push(Json::object()
                      .set("job", Json::number(outcome.job.index))
                      .set("scenario", Json::string(outcome.job.spec.name))
                      .set("error", Json::string(outcome.error)));
  }
  j.set("failures", std::move(failures));
  // A truncated JSONL sink marks the run as bad in both forms (a document
  // produced by a failed run should never compare equal to a clean one);
  // the key is absent on healthy runs so their bytes are unchanged.
  if (jsonl_failed) j.set("jsonl_failed", Json::boolean(true));
  if (include_timing) {
    Json timing = Json::object();
    timing.set("elapsed_seconds", Json::number(elapsed_seconds));
    timing.set("threads", Json::number(threads));
    timing.set("jobs_per_second", Json::number(jobs_per_second()));
    Json per_point = Json::array();
    for (const PointSummary& point : points) {
      per_point.push(point.elapsed.to_json());
    }
    timing.set("point_elapsed", std::move(per_point));
    j.set("timing", std::move(timing));
    if (cache_enabled) {
      // Hit/miss accounting rides with timing: both describe how this
      // run executed, not what it computed.
      j.set("cache", Json::object()
                         .set("hits", Json::number(cache.hits))
                         .set("misses", Json::number(cache.misses))
                         .set("corrupt", Json::number(cache.corrupt))
                         .set("stores", Json::number(cache.stores))
                         .set("skipped", Json::number(cache.skipped)));
    }
    if (dispatch_enabled) {
      // Same contract as cache: how the run executed, not what it
      // computed, so dispatch counters ride with timing too.
      Json busy = Json::array();
      for (const double seconds : dispatch.worker_busy_seconds) {
        busy.push(Json::number(seconds));
      }
      j.set("dispatch",
            Json::object()
                .set("workers", Json::number(dispatch.workers))
                .set("jobs_dispatched", Json::number(dispatch.jobs_dispatched))
                .set("jobs_retried", Json::number(dispatch.jobs_retried))
                .set("jobs_reassigned", Json::number(dispatch.jobs_reassigned))
                .set("worker_restarts", Json::number(dispatch.worker_restarts))
                .set("frames_received", Json::number(dispatch.frames_received))
                .set("worker_busy_seconds", std::move(busy)));
    }
  }
  return j;
}

SweepResult SweepResult::from_json(const Json& j) {
  SweepResult r;
  r.sweep = j.get_or("sweep", std::string());
  r.jobs_total = j.at("jobs_total").as_size();
  r.jobs_failed = j.at("jobs_failed").as_size();
  for (const Json& e : j.at("points").elements()) {
    PointSummary point;
    point.point = e.at("point").as_size();
    point.coords = detail::coords_from_json(e.at("coords"));
    point.replicates = e.at("replicates").as_size();
    for (const auto& [name, aggregate] : e.at("metrics").items()) {
      point.metrics.emplace_back(name, Aggregate::from_json(aggregate));
    }
    r.points.push_back(std::move(point));
  }
  if (j.contains("failures")) {
    // Reconstruct the failed outcomes (identity + error only) so parsing
    // and re-dumping a document with failures is idempotent.
    for (const Json& e : j.at("failures").elements()) {
      JobOutcome outcome;
      outcome.job.index = e.at("job").as_size();
      outcome.job.spec.name = e.get_or("scenario", std::string());
      outcome.error = e.get_or("error", std::string());
      r.jobs.push_back(std::move(outcome));
    }
  }
  r.jsonl_failed = j.get_or("jsonl_failed", false);
  if (j.contains("timing")) {
    const Json& timing = j.at("timing");
    r.elapsed_seconds = timing.get_or("elapsed_seconds", 0.0);
    r.threads = timing.contains("threads") ? timing.at("threads").as_size()
                                           : r.threads;
    if (timing.contains("point_elapsed")) {
      const Json::Array& elapsed = timing.at("point_elapsed").elements();
      for (std::size_t p = 0; p < elapsed.size() && p < r.points.size();
           ++p) {
        r.points[p].elapsed = Aggregate::from_json(elapsed[p]);
      }
    }
  }
  if (j.contains("cache")) {
    const Json& cache = j.at("cache");
    r.cache_enabled = true;
    r.cache.hits = cache.at("hits").as_size();
    r.cache.misses = cache.at("misses").as_size();
    r.cache.corrupt =
        cache.contains("corrupt") ? cache.at("corrupt").as_size() : 0;
    r.cache.stores =
        cache.contains("stores") ? cache.at("stores").as_size() : 0;
    r.cache.skipped =
        cache.contains("skipped") ? cache.at("skipped").as_size() : 0;
  }
  if (j.contains("dispatch")) {
    const Json& d = j.at("dispatch");
    r.dispatch_enabled = true;
    r.dispatch.workers = d.at("workers").as_size();
    r.dispatch.jobs_dispatched = d.at("jobs_dispatched").as_size();
    r.dispatch.jobs_retried = d.at("jobs_retried").as_size();
    r.dispatch.jobs_reassigned = d.at("jobs_reassigned").as_size();
    r.dispatch.worker_restarts = d.at("worker_restarts").as_size();
    r.dispatch.frames_received = d.at("frames_received").as_size();
    if (d.contains("worker_busy_seconds")) {
      for (const Json& seconds : d.at("worker_busy_seconds").elements()) {
        r.dispatch.worker_busy_seconds.push_back(seconds.as_number());
      }
    }
  }
  return r;
}

SuiteRunner::SuiteRunner(SuiteOptions options)
    : options_(std::move(options)) {}

SweepResult SuiteRunner::run(const SweepSpec& sweep) const {
  return run_jobs(sweep.expand(),
                  sweep.name.empty() ? sweep.base.name : sweep.name);
}

SweepResult SuiteRunner::run_jobs(std::vector<SweepJob> jobs,
                                  const std::string& suite_name) const {
  if (options_.dispatch.workers > 0) {
    if (options_.cache != nullptr) {
      throw SpecError(
          "run_jobs: SuiteOptions::cache cannot be combined with dispatch "
          "(an in-process cache handle does not cross the fork; pass the "
          "cache directory to workers via dispatch.extra_worker_args)");
    }
    return dist::run_dispatched(std::move(jobs), suite_name, options_);
  }

  const auto suite_start = std::chrono::steady_clock::now();

  std::size_t n_threads = options_.threads;
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  n_threads = std::max<std::size_t>(1, std::min(n_threads, jobs.size()));

  SweepResult out;
  out.sweep = suite_name;
  out.jobs_total = jobs.size();
  out.threads = n_threads;
  out.cache_enabled = options_.cache != nullptr;
  out.jobs.resize(jobs.size());
  // The cache instance may outlive this run (warm reruns reuse it), so
  // the per-run accounting is a delta against its lifetime counters.
  const CacheStats cache_before =
      options_.cache != nullptr ? options_.cache->stats() : CacheStats{};

  // The engine: an atomic counter hands out job indices; completed
  // outcomes land in a slot vector; whichever worker extends the
  // completed prefix flushes it, so the JSONL sink and on_result hook
  // observe strict job-index order no matter which thread finished what.
  // Metric vectors are extracted before the flush can drop the heavy
  // per-period series (store_results == false streams at O(metrics) per
  // job, not O(series)).
  std::vector<std::vector<std::pair<std::string, double>>> metrics_by_job(
      jobs.size());
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::vector<char> done(jobs.size(), 0);
  std::size_t flushed = 0;
  bool flushing = false;

  // At most one thread flushes at a time, and sink I/O (JSONL
  // serialization, the on_result hook) happens with the lock RELEASED --
  // workers finishing short jobs never queue behind a slow sink. The
  // active flusher re-checks the prefix after every item, so entries
  // marked done while it was writing are picked up before it retires.
  auto flush_prefix = [&](std::unique_lock<std::mutex>& lock) {
    if (flushing) return;
    flushing = true;
    while (flushed < out.jobs.size() && done[flushed]) {
      JobOutcome& outcome = out.jobs[flushed];
      ++flushed;
      lock.unlock();  // the flushed slot is stable; only this thread
                      // touches it now
      bool sink_failed = false;
      if (options_.jsonl != nullptr) {
        *options_.jsonl
            << detail::jsonl_line(outcome, options_.jsonl_timing).dump()
            << '\n';
        // A full disk fails silently otherwise: the stream swallows the
        // short write and the run would report success over a truncated
        // file. Checked per line so the failure is caught while the run
        // can still surface it, not after the ofstream is gone.
        sink_failed = !options_.jsonl->good();
      }
      if (options_.on_result) options_.on_result(outcome);
      if (!options_.store_results) outcome.result = ExperimentResult{};
      lock.lock();
      if (sink_failed) out.jsonl_failed = true;
    }
    flushing = false;
  };

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      JobOutcome outcome;
      outcome.job = std::move(jobs[i]);
      const auto job_start = std::chrono::steady_clock::now();
      try {
        // Lookup-before-execute: a hit replays the memoized result and
        // runs zero simulation; a miss executes and writes through, so
        // the next run of the same spec (any thread count, any axis
        // reordering that preserves the spec) hits.
        if (options_.cache != nullptr) {
          if (std::optional<ExperimentResult> cached =
                  options_.cache->load(outcome.job.spec)) {
            outcome.result = std::move(*cached);
            outcome.ok = true;
            outcome.cached = true;
          }
        }
        if (!outcome.cached) {
          Experiment experiment(outcome.job.spec);
          outcome.result = experiment.run();
          outcome.ok = true;
          if (options_.cache != nullptr) {
            options_.cache->store(outcome.job.spec, outcome.result);
          }
        }
      } catch (const std::exception& e) {
        outcome.error = e.what();
        if (options_.cache != nullptr) options_.cache->note_skipped();
      }
      outcome.elapsed_seconds = seconds_since(job_start);
      if (outcome.ok) {
        metrics_by_job[i] = detail::result_metrics(outcome.result);
      }

      std::unique_lock<std::mutex> lock(mu);
      out.jobs[i] = std::move(outcome);
      done[i] = 1;
      flush_prefix(lock);
    }
  };

  if (n_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  detail::aggregate_points(out, metrics_by_job);

  // Surface buffered sink failures before the caller closes the stream
  // (an ofstream destructor would swallow them).
  if (options_.jsonl != nullptr && !options_.jsonl->flush().good()) {
    out.jsonl_failed = true;
  }
  if (options_.cache != nullptr) {
    const CacheStats after = options_.cache->stats();
    out.cache.hits = after.hits - cache_before.hits;
    out.cache.misses = after.misses - cache_before.misses;
    out.cache.corrupt = after.corrupt - cache_before.corrupt;
    out.cache.stores = after.stores - cache_before.stores;
    out.cache.skipped = after.skipped - cache_before.skipped;
  }
  out.elapsed_seconds = seconds_since(suite_start);
  return out;
}

}  // namespace deproto::api
