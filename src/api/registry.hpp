#pragma once

// The scenario registry: the paper's experiments (and their loss/failure
// variants) pre-registered as named ScenarioSpecs, so `deproto-run <name>`
// and sweep drivers never hand-wire a pipeline. A second tier registers
// SweepSpec presets for the paper's scaling figures (accuracy vs N,
// convergence vs N, churn-rate sweeps), runnable via `deproto-run --sweep
// <name>`. Names are stable API; tests assert the exact lists.

#include <string>
#include <vector>

#include "api/spec.hpp"
#include "api/sweep.hpp"

namespace deproto::api {

/// All registered scenario names, in registration order.
[[nodiscard]] std::vector<std::string> registry_names();

/// The spec registered under `name`, or nullptr when unknown.
[[nodiscard]] const ScenarioSpec* registry_find(const std::string& name);

/// The spec registered under `name`; throws SpecError when unknown.
[[nodiscard]] ScenarioSpec registry_get(const std::string& name);

/// All registered sweep preset names, in registration order.
[[nodiscard]] std::vector<std::string> sweep_registry_names();

/// The sweep preset registered under `name`, or nullptr when unknown.
[[nodiscard]] const SweepSpec* sweep_registry_find(const std::string& name);

/// The sweep preset registered under `name`; throws SpecError when
/// unknown.
[[nodiscard]] SweepSpec sweep_registry_get(const std::string& name);

}  // namespace deproto::api
