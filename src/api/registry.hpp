#pragma once

// The scenario registry: the paper's experiments (and their loss/failure
// variants) pre-registered as named ScenarioSpecs, so `deproto-run <name>`
// and sweep drivers never hand-wire a pipeline. Names are stable API;
// tests assert the exact list.

#include <string>
#include <vector>

#include "api/spec.hpp"

namespace deproto::api {

/// All registered scenario names, in registration order.
[[nodiscard]] std::vector<std::string> registry_names();

/// The spec registered under `name`, or nullptr when unknown.
[[nodiscard]] const ScenarioSpec* registry_find(const std::string& name);

/// The spec registered under `name`; throws SpecError when unknown.
[[nodiscard]] ScenarioSpec registry_get(const std::string& name);

}  // namespace deproto::api
